#include "arch/engine.h"

#include <algorithm>

#include "sort/centralized_sort.h"

namespace hima {

Cycle
StepTiming::categoryCycles(KernelCategory cat) const
{
    Cycle total = 0;
    for (const StageTiming &s : stages)
        if (kernelCategory(s.kernel) == cat)
            total += s.total();
    return total;
}

Real
StepTiming::categoryEnergy(KernelCategory cat) const
{
    Real total = 0.0;
    for (const StageTiming &s : stages)
        if (kernelCategory(s.kernel) == cat)
            total += s.energyJ;
    return total;
}

Real
StepTiming::totalEnergyJ() const
{
    Real total = 0.0;
    for (const StageTiming &s : stages)
        total += s.energyJ;
    return total;
}

HimaEngine::HimaEngine(const ArchConfig &config, const TechParams &tech)
    : config_(config), tech_(tech),
      topology_(Topology::build(config.noc, config.tiles)),
      network_(topology_, config.routerCapacity)
{
    config_.finalize();
}

Cycle
HimaEngine::computeCycles(const OpCounts &perTile, bool onCt) const
{
    // Roofline: the datapath, the SFUs and the three memory ports all
    // stream concurrently; the kernel runs at the pace of its binding
    // resource.
    const Index macRate =
        onCt ? config_.ctMacsPerCycle : config_.peMacsPerCycle;
    auto ceilDiv = [](std::uint64_t a, std::uint64_t b) {
        return (a + b - 1) / b;
    };
    Cycle cycles = ceilDiv(perTile.macs + perTile.elems, macRate);
    // The CT's LSTM engine carries a wide sigmoid/tanh array; PTs share
    // a narrow SFU.
    const Index sfuRate = onCt ? 64 : config_.sfuOpsPerCycle;
    cycles = std::max(cycles, ceilDiv(perTile.sfu, sfuRate));
    cycles = std::max(cycles, ceilDiv(perTile.extWords,
                                      config_.extMemWordsPerCycle));
    cycles = std::max(cycles, ceilDiv(perTile.stateWords,
                                      config_.stateMemWordsPerCycle));
    cycles = std::max(cycles, ceilDiv(perTile.linkWords,
                                      config_.linkMemWordsPerCycle));
    return cycles;
}

Real
HimaEngine::stageEnergy(const OpCounts &perTile, Index activeTiles,
                        std::uint64_t flitHops) const
{
    const Real pj = 1e-12;
    Real energy = 0.0;
    const Real tiles = static_cast<Real>(activeTiles);
    energy += tiles * static_cast<Real>(perTile.macs) * tech_.macPj;
    energy += tiles * static_cast<Real>(perTile.elems) * tech_.elemPj;
    energy += tiles * static_cast<Real>(perTile.sfu) * tech_.sfuPj;
    energy += tiles * static_cast<Real>(perTile.extWords) * tech_.extMemPj;
    energy +=
        tiles * static_cast<Real>(perTile.stateWords) * tech_.stateMemPj;
    energy +=
        tiles * static_cast<Real>(perTile.linkWords) * tech_.linkageMemPj;
    energy += static_cast<Real>(flitHops) * tech_.flitHopPj;
    return energy * pj;
}

void
HimaEngine::runStage(StepTiming &out, Kernel kernel,
                     const OpCounts &perTile,
                     const std::vector<Message> &batch, NocMode mode,
                     bool onControllerTile)
{
    StageTiming stage;
    stage.kernel = kernel;
    stage.computeCycles = computeCycles(perTile, onControllerTile);

    std::uint64_t flitHops = 0;
    stage.nocCycles = 0;
    if (!batch.empty()) {
        // Kernels express payloads in 32-bit words; convert to flits of
        // the configured link width here, centrally.
        std::vector<Message> flitBatch = batch;
        for (Message &m : flitBatch)
            m.flits = std::max<std::uint64_t>(
                1, (m.flits + config_.linkWords - 1) / config_.linkWords);
        const NocMode effective =
            topology_.supportsMode(mode) ? mode : NocMode::Full;
        TrafficResult traffic = network_.run(flitBatch, effective);
        stage.nocCycles = traffic.makespan;
        flitHops = traffic.flitHops * config_.linkWords;
    }

    const Index activeTiles = onControllerTile ? 1 : config_.tiles;
    stage.energyJ = stageEnergy(perTile, activeTiles, flitHops);

    // Module attribution for Fig. 11(f).
    const Real pj = 1e-12;
    const Real tiles = static_cast<Real>(activeTiles);
    const Real opJ = tiles * pj *
                     (static_cast<Real>(perTile.macs) * tech_.macPj +
                      static_cast<Real>(perTile.elems) * tech_.elemPj +
                      static_cast<Real>(perTile.sfu) * tech_.sfuPj);
    const Real memJ =
        tiles * pj *
        (static_cast<Real>(perTile.extWords) * tech_.extMemPj +
         static_cast<Real>(perTile.stateWords) * tech_.stateMemPj +
         static_cast<Real>(perTile.linkWords) * tech_.linkageMemPj);
    const Real netJ = pj * static_cast<Real>(flitHops) * tech_.flitHopPj;
    if (onControllerTile) {
        out.moduleEnergy.ctJ += opJ + memJ;
    } else {
        out.moduleEnergy.ptEngineJ += opJ;
        out.moduleEnergy.ptMemJ += memJ;
        // Buffer loaders / interface logic scale with the datapath work.
        out.moduleEnergy.ptOtherJ += 0.18 * (opJ + memJ);
    }
    out.moduleEnergy.ptRouterJ += netJ;

    out.totalCycles += stage.total();
    out.stages.push_back(stage);
}

StepTiming
HimaEngine::simulateStep()
{
    StepTiming out;

    const Index n = config_.dnc.memoryRows;
    const Index w = config_.dnc.memoryWidth;
    const Index r = config_.dnc.readHeads;
    const Index nt = config_.tiles;
    const Index local = n / nt;
    const bool dncd = config_.distributed;

    // In DNC-D every kernel operates on the local shard; in DNC the work
    // is the global kernel divided across tiles per the partition.
    const std::uint64_t rowsPerTile = dncd ? local : n / nt;
    const Partition &lp = config_.linkPartition;
    // Linkage cells per tile: (N/Nt_h) x (N/Nt_w) for DNC, local^2 for
    // DNC-D.
    const std::uint64_t linkCells =
        dncd ? static_cast<std::uint64_t>(local) * local
             : (static_cast<std::uint64_t>(n) / lp.blockRows) *
                   (n / lp.blockCols);

    const Index skim = static_cast<Index>(
        config_.dnc.skimRate * static_cast<Real>(dncd ? local : n));
    const std::uint64_t sortLen = (dncd ? local : n) - skim;
    const std::uint64_t sortShard = dncd ? sortLen : sortLen / nt;

    // Fresh stream-sharing group ids per stage.
    std::uint64_t nextGroup = 1;

    // ---- NN (LSTM) on the CT + interface broadcast -------------------
    {
        OpCounts ops;
        const Index hidden = config_.dnc.controllerSize;
        const Index feed = config_.dnc.inputSize + r * w;
        ops.macs = 4ull * hidden * (feed + hidden + 1) +
                   static_cast<std::uint64_t>(
                       config_.dnc.interfaceSize()) * hidden +
                   2ull * config_.dnc.outputSize * hidden;
        ops.sfu = 5ull * hidden;
        // Interface broadcast is a tree multicast: the same vector goes
        // to every PT.
        runStage(out, Kernel::Lstm, ops,
                 broadcast(topology_, config_.dnc.interfaceSize(),
                           nextGroup++),
                 NocMode::Star, true);
    }

    // ---- CW.(1) Normalize --------------------------------------------
    {
        OpCounts ops;
        ops.macs = rowsPerTile * w;
        ops.sfu = rowsPerTile + 1;
        ops.extWords = rowsPerTile * w;
        std::vector<Message> batch;
        if (!dncd && config_.extPartition.blockCols > 1) {
            // Partial row norms exchanged within each external block row.
            const Partition &ep = config_.extPartition;
            const auto &pts = topology_.processingNodes();
            const std::uint64_t words = n / ep.blockRows;
            for (Index bi = 0; bi < ep.blockRows; ++bi) {
                const NodeId leader = pts[bi * ep.blockCols];
                for (Index bj = 1; bj < ep.blockCols; ++bj) {
                    const NodeId t = pts[bi * ep.blockCols + bj];
                    batch.push_back({t, leader, words, 0, {}});
                    batch.push_back({leader, t, words, 0, {}});
                }
            }
        }
        runStage(out, Kernel::Normalize, ops, batch, NocMode::Full);
    }

    // ---- CW.(2) Similarity (write key) --------------------------------
    {
        OpCounts ops;
        ops.macs = rowsPerTile * w;
        // PLA+LUT softmax turns the exp into 1 multiply + 1 add on the
        // MAC rail (Sec. 5.2); exact softmax burns the SFU.
        if (config_.dnc.approximateSoftmax) {
            ops.macs += 2 * rowsPerTile;
            ops.sfu = rowsPerTile; // the normalize divide remains
        } else {
            ops.sfu = 2 * rowsPerTile; // exp + normalize divide
        }
        ops.extWords = rowsPerTile * w;
        std::vector<Message> batch;
        if (!dncd) { // global softmax: psum round trip through the CT
            batch = gatherBroadcast(topology_, 2, 2, nextGroup,
                                    nextGroup + 1);
            nextGroup += 2;
        }
        runStage(out, Kernel::Similarity, ops, batch, NocMode::Star);
    }

    // ---- HW.(1) Retention / HW.(2) Usage -------------------------------
    {
        OpCounts ops;
        ops.elems = 2ull * r * rowsPerTile;
        ops.stateWords = static_cast<std::uint64_t>(r) * rowsPerTile;
        runStage(out, Kernel::Retention, ops, {}, NocMode::Full);
    }
    {
        OpCounts ops;
        ops.elems = 4ull * rowsPerTile;
        ops.stateWords = 3ull * rowsPerTile;
        runStage(out, Kernel::Usage, ops, {}, NocMode::Full);
    }

    // ---- HW.(2) Usage sort ---------------------------------------------
    {
        OpCounts ops;
        std::vector<Message> batch;
        Cycle sortCycles = 0;
        if (dncd) {
            // Local MDSA only; the global stage is eliminated (Fig. 9).
            sortCycles = MdsaSorter(sortLen).modelCycles();
            ops.elems = 0;
        } else if (config_.twoStageSort) {
            TwoStageSorter sorter(sortShard * nt, nt);
            sortCycles = sorter.modelTiming().totalCycles;
            // The PMS consumes Nt shard streams in parallel through the
            // CT's usage buffers (wide port: group-shared), and the
            // merged order streams back.
            batch = gatherBroadcast(topology_, sortShard, sortShard,
                                    nextGroup, nextGroup + 1);
            nextGroup += 2;
        } else {
            // HiMA-baseline sort: each tile sorts its shard serially
            // (n log n insertion-free merge), then the CT merges the Nt
            // runs at one output per cycle — no MDSA, no parallel merge
            // tree. This is the organization the two-stage sort replaces
            // for its 1.12x step (Fig. 11(a)).
            sortCycles = CentralizedSorter::modelCycles(sortShard) +
                         sortLen + nt;
            batch = gatherBroadcast(topology_, sortShard, sortShard,
                                    nextGroup, nextGroup + 1);
            nextGroup += 2;
        }
        ops.stateWords = 2ull * sortShard;
        // Comparator energy rides on the element-op rail.
        ops.elems = sortLen > 1
                        ? static_cast<std::uint64_t>(sortLen) / nt
                        : 0;
        runStage(out, Kernel::UsageSort, ops, batch, NocMode::Star);
        out.stages.back().computeCycles += sortCycles;
        out.totalCycles += sortCycles;
    }

    // ---- HW.(3) Allocation ---------------------------------------------
    {
        OpCounts ops;
        ops.elems = 2ull * sortShard;
        ops.stateWords = 2ull * sortShard;
        std::vector<Message> batch;
        if (!dncd) // running product handed tile to tile
            batch = ringAccumulate(topology_, 1);
        runStage(out, Kernel::Allocation, ops, batch, NocMode::RingMode);
    }

    // ---- WM Write-weight merge -----------------------------------------
    {
        OpCounts ops;
        ops.elems = 3ull * rowsPerTile;
        ops.stateWords = 3ull * rowsPerTile;
        runStage(out, Kernel::WriteMerge, ops, {}, NocMode::Full);
    }

    // ---- MW Memory write ------------------------------------------------
    {
        OpCounts ops;
        ops.elems = 4ull * rowsPerTile * w;
        ops.extWords = 2ull * rowsPerTile * w;
        ops.stateWords = rowsPerTile;
        runStage(out, Kernel::MemoryWrite, ops, {}, NocMode::Full);
    }

    // ---- HR.(1) Linkage ---------------------------------------------------
    {
        OpCounts ops;
        ops.elems = 4ull * linkCells;
        ops.linkWords = 2ull * linkCells;
        ops.stateWords = 2ull * rowsPerTile;
        std::vector<Message> batch;
        if (!dncd) {
            // Every linkage tile pulls its w (block-row) and p (block-col)
            // slices from the row-wise state owners: O(Nt * N) words.
            // Tiles in the same block row need the *same* w slice, so
            // each owner's distribution is a multicast group.
            const auto &pts = topology_.processingNodes();
            const std::uint64_t wGroupBase = nextGroup;
            nextGroup += lp.blockRows;
            const std::uint64_t pGroupBase = nextGroup;
            nextGroup += lp.blockCols;
            for (Index t = 0; t < nt; ++t) {
                const Index bi = t / lp.blockCols;
                const Index bj = t % lp.blockCols;
                const NodeId wOwner = pts[(bi * nt / lp.blockRows) % nt];
                const NodeId pOwner = pts[(bj * nt / lp.blockCols) % nt];
                if (wOwner != pts[t])
                    batch.push_back({wOwner, pts[t], n / lp.blockRows, 0,
                                     {}, wGroupBase + bi});
                if (pOwner != pts[t])
                    batch.push_back({pOwner, pts[t], n / lp.blockCols, 0,
                                     {}, pGroupBase + bj});
            }
        }
        runStage(out, Kernel::Linkage, ops, batch, NocMode::Full);
    }

    // ---- HR.(2) Precedence -------------------------------------------------
    {
        OpCounts ops;
        ops.elems = 3ull * rowsPerTile;
        ops.stateWords = 3ull * rowsPerTile;
        std::vector<Message> batch;
        if (!dncd) // global write-weight sum
            batch = ringAccumulate(topology_, 1);
        runStage(out, Kernel::Precedence, ops, batch, NocMode::RingMode);
    }

    // ---- HR.(3) Forward-backward --------------------------------------------
    {
        OpCounts ops;
        ops.macs = 2ull * r * linkCells;
        ops.linkWords = 2ull * r * linkCells;
        ops.stateWords = 4ull * r * rowsPerTile;
        std::vector<Message> batch;
        if (!dncd) {
            const auto &pts = topology_.processingNodes();
            const std::uint64_t rowWords = r * (n / lp.blockRows);
            const std::uint64_t colWords = r * (n / lp.blockCols);
            // Forward psums reduce (in-network, associative adds) onto
            // each linkage block row's leader; backward psums onto each
            // block column's leader.
            for (Index bi = 0; bi < lp.blockRows; ++bi) {
                const std::uint64_t group = nextGroup++;
                const NodeId leader = pts[bi * lp.blockCols];
                for (Index bj = 1; bj < lp.blockCols; ++bj) {
                    batch.push_back({pts[bi * lp.blockCols + bj], leader,
                                     rowWords, 0, {}, group});
                }
            }
            for (Index bj = 0; bj < lp.blockCols; ++bj) {
                const std::uint64_t group = nextGroup++;
                const NodeId leader = pts[bj];
                for (Index bi = 1; bi < lp.blockRows; ++bi) {
                    batch.push_back({pts[bi * lp.blockCols + bj], leader,
                                     colWords, 0, {}, group});
                }
            }
        }
        runStage(out, Kernel::ForwardBackward, ops, batch, NocMode::Full);
    }

    // ---- CR Content read weighting (R heads) ---------------------------------
    {
        OpCounts ops;
        ops.macs = static_cast<std::uint64_t>(r) * rowsPerTile * w;
        if (config_.dnc.approximateSoftmax) {
            ops.macs += 2ull * r * rowsPerTile;
            ops.sfu = static_cast<std::uint64_t>(r) * rowsPerTile;
        } else {
            ops.sfu = 2ull * r * rowsPerTile;
        }
        ops.extWords = static_cast<std::uint64_t>(r) * rowsPerTile * w;
        std::vector<Message> batch;
        if (!dncd) {
            batch = gatherBroadcast(topology_, 2 * r, 2 * r, nextGroup,
                                    nextGroup + 1);
            nextGroup += 2;
        }
        runStage(out, Kernel::Similarity, ops, batch, NocMode::Star);
    }

    // ---- RM Read-weight merge -------------------------------------------------
    {
        OpCounts ops;
        ops.elems = 3ull * r * rowsPerTile;
        ops.stateWords = 4ull * r * rowsPerTile;
        runStage(out, Kernel::ReadMerge, ops, {}, NocMode::Full);
    }

    // ---- MR Memory read ----------------------------------------------------
    {
        OpCounts ops;
        ops.macs = static_cast<std::uint64_t>(r) * rowsPerTile * w;
        ops.extWords = static_cast<std::uint64_t>(r) * rowsPerTile * w;
        ops.stateWords = static_cast<std::uint64_t>(r) * rowsPerTile;
        std::vector<Message> batch;
        if (!dncd) {
            const Partition &ep = config_.extPartition;
            const auto &pts = topology_.processingNodes();
            // Transpose element moves within external block rows (zero
            // for the row-wise optimum), Eq. (2) first term. Distinct
            // submatrices: genuine unicast, no sharing.
            if (ep.blockCols > 1) {
                const std::uint64_t words =
                    std::max<std::uint64_t>(1, (n / nt) /
                                                   (ep.blockCols - 1));
                for (Index bi = 0; bi < ep.blockRows; ++bi)
                    for (Index a = 0; a < ep.blockCols; ++a)
                        for (Index b = 0; b < ep.blockCols; ++b)
                            if (a != b)
                                batch.push_back(
                                    {pts[bi * ep.blockCols + a],
                                     pts[bi * ep.blockCols + b],
                                     words * r, 0, {}});
            }
            // Psum reduction down each block column (in-network adds),
            // Eq. (2) second term.
            const std::uint64_t psumWords =
                std::max<std::uint64_t>(1, r * (w / ep.blockCols));
            for (Index bj = 0; bj < ep.blockCols; ++bj) {
                const std::uint64_t group = nextGroup++;
                const NodeId leader = pts[bj];
                for (Index bi = 1; bi < ep.blockRows; ++bi) {
                    batch.push_back({pts[bi * ep.blockCols + bj], leader,
                                     psumWords, 0, {}, group});
                }
            }
        }
        // Final read vectors collect at the CT. The weighted combine is
        // associative, so this too reduces in-network (one R*W stream).
        std::vector<Message> collect = gather(
            topology_, static_cast<std::uint64_t>(r) * w, nextGroup++);
        for (auto &m : collect)
            batch.push_back(std::move(m));
        runStage(out, Kernel::MemoryRead, ops, batch, NocMode::Full);
    }

    // ---- DNC-D read-vector merge on the CT ------------------------------------
    if (dncd) {
        OpCounts ops;
        ops.macs = static_cast<std::uint64_t>(nt) * r * w;
        runStage(out, Kernel::ReadMerge, ops, {}, NocMode::Full, true);
    }

    return out;
}

Real
HimaEngine::testLatencyUs()
{
    const StepTiming step = simulateStep();
    const Real cycles = static_cast<Real>(step.totalCycles) *
                        static_cast<Real>(config_.stepsPerTest);
    return cycles / (config_.clockGhz * 1e3);
}

PowerReport
HimaEngine::power()
{
    const StepTiming step = simulateStep();
    const Real seconds =
        static_cast<Real>(step.totalCycles) / (config_.clockGhz * 1e9);

    PowerReport report{};
    report.dynamicW = step.totalEnergyJ() / seconds;

    const AreaReport areas = area();
    report.leakageW = areas.totalMm2 * tech_.leakageWPerMm2;

    // Router idle power: mode gating powers down unused ports.
    Real routerIdle = tech_.routerIdleW * static_cast<Real>(config_.tiles);
    if (config_.multiModeRouting)
        routerIdle *= tech_.modeGatingFactor;
    if (config_.distributed)
        routerIdle *= 0.05; // CT-PT-only router
    report.leakageW += routerIdle;

    // The per-PT MDSA sorters clock whenever present (the paper's
    // Fig. 11(c) "+9% for the two-stage sort" step).
    if (config_.twoStageSort)
        report.leakageW +=
            tech_.sorterIdleW * static_cast<Real>(config_.tiles);

    report.totalW = report.dynamicW + report.leakageW;

    for (int c = 0; c < static_cast<int>(KernelCategory::NumCategories);
         ++c) {
        report.categoryW[c] =
            step.categoryEnergy(static_cast<KernelCategory>(c)) / seconds;
    }

    report.modulePower.ptMemJ = step.moduleEnergy.ptMemJ / seconds;
    report.modulePower.ptRouterJ =
        step.moduleEnergy.ptRouterJ / seconds + routerIdle;
    report.modulePower.ptEngineJ = step.moduleEnergy.ptEngineJ / seconds;
    report.modulePower.ptOtherJ = step.moduleEnergy.ptOtherJ / seconds;
    report.modulePower.ctJ = step.moduleEnergy.ctJ / seconds;
    return report;
}

} // namespace hima
