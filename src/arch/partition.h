/**
 * @file
 * Submatrix-wise memory partition (Sec. 4.2).
 *
 * A partition splits an M-row x C-column memory across Nt = Nt_h x Nt_w
 * tiles: Nt_h block rows by Nt_w block columns. Row-wise (Nt_h = Nt,
 * Nt_w = 1) and column-wise (Nt_h = 1, Nt_w = Nt) are the two extremes.
 *
 * The closed-form inter-tile transfer counts below are Eqs. (1)-(3) of
 * the paper; the optimizers enumerate the divisor pairs of Nt and return
 * the arg-min, reproducing the paper's findings that the external memory
 * wants row-wise partitioning while the N x N linkage memory wants a
 * balanced submatrix split (4 x 4 at Nt = 16).
 */

#ifndef HIMA_ARCH_PARTITION_H
#define HIMA_ARCH_PARTITION_H

#include <vector>

#include "common/tensor.h"

namespace hima {

/** One Nt_h x Nt_w block partition. */
struct Partition
{
    Index blockRows; ///< Nt_h
    Index blockCols; ///< Nt_w

    Index tiles() const { return blockRows * blockCols; }

    /** Row-wise partition over Nt tiles. */
    static Partition rowWise(Index nt) { return {nt, 1}; }
    /** Column-wise partition over Nt tiles. */
    static Partition colWise(Index nt) { return {1, nt}; }

    bool operator==(const Partition &) const = default;
};

/** All (Nt_h, Nt_w) divisor pairs of Nt, ascending Nt_w. */
std::vector<Partition> enumeratePartitions(Index nt);

/**
 * Eq. (1): inter-tile transfers of the content-based weighting kernels
 * (normalize + similarity) for an N-row external memory.
 */
std::uint64_t contentWeightingTraffic(Index n, const Partition &p);

/**
 * Eq. (2): inter-tile transfers of the memory-read kernel (transpose +
 * mat-vec) for an N x W external memory.
 */
std::uint64_t memoryReadTraffic(Index n, Index w, const Partition &p);

/**
 * Eq. (3): inter-tile transfers of the forward-backward kernel over the
 * N x N linkage memory, in units of length-N row/psum chunks (forward
 * plus backward term).
 */
Real forwardBackwardTraffic(Index n, const Partition &p);

/**
 * Arg-min over the divisor pairs of Nt of the external memory's total
 * per-step traffic: the content-weighting kernel runs (1 + R) times per
 * DNC step (one write key + R read keys) and the memory-read kernel R
 * times, so the costs are weighted by those kernel frequencies.
 */
Partition optimizeExternalPartition(Index n, Index w, Index nt,
                                    Index readHeads = 4);

/** Arg-min of forwardBackwardTraffic over the divisor pairs of Nt. */
Partition optimizeLinkagePartition(Index n, Index nt);

} // namespace hima

#endif // HIMA_ARCH_PARTITION_H
