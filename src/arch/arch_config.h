/**
 * @file
 * Configuration of one HiMA machine instance: DNC shapes, tile count,
 * NoC choice, partitions, and the architectural/algorithmic feature
 * toggles that Fig. 11(a)/(c) ablate one by one.
 */

#ifndef HIMA_ARCH_ARCH_CONFIG_H
#define HIMA_ARCH_ARCH_CONFIG_H

#include "arch/partition.h"
#include "dnc/dnc_config.h"
#include "noc/topology.h"

namespace hima {

/** Full architecture description of a HiMA prototype. */
struct ArchConfig
{
    /** Model shapes (memoryRows is the global N). */
    DncConfig dnc;

    /** Processing tile count Nt. */
    Index tiles = 16;

    /** NoC topology (HiMA-baseline uses HTree; optimized uses Hima). */
    NocKind noc = NocKind::Hima;

    /**
     * Multi-mode routers (Sec. 4.1). Routing always takes the shortest
     * enabled path; when set, idle router ports are mode-gated, which the
     * power model credits (Fig. 11(c)'s HiMA-NoC step).
     */
    bool multiModeRouting = true;

    /** External memory partition (Sec. 4.2.1; row-wise is optimal). */
    Partition extPartition = Partition::rowWise(16);

    /** Linkage memory partition (Sec. 4.2.2; submatrix is optimal). */
    Partition linkPartition = {4, 4};

    /** Two-stage usage sort (Sec. 4.3) vs centralized merge sort. */
    bool twoStageSort = true;

    /** Run the DNC-D distributed model (Sec. 5.1). */
    bool distributed = false;

    // --- tile microarchitecture -------------------------------------
    /** M-M engine MAC (and element-op) throughput per PT per cycle. */
    Index peMacsPerCycle = 256;
    /** Special-function (exp/div/sqrt) throughput per PT per cycle. */
    Index sfuOpsPerCycle = 2;
    /** External-memory bank bandwidth per PT (words per cycle). */
    Index extMemWordsPerCycle = 128;
    /** Small state-memory bandwidth per PT (words per cycle). */
    Index stateMemWordsPerCycle = 128;
    /** Linkage bank bandwidth per PT (wide on-tile SRAM macro). */
    Index linkMemWordsPerCycle = 256;
    /**
     * Controller-tile MAC throughput. The CT hosts "an LSTM
     * implementation employed by [MANNA]" — a wide systolic engine; a
     * 64 x 64 MAC array keeps the NN under ~5% of the step latency as
     * in Fig. 11(b).
     */
    Index ctMacsPerCycle = 4096;
    /** NoC link width in 32-bit words per flit (256-bit links). */
    Index linkWords = 8;
    /** Router crossbar transit capacity in flits per cycle. */
    Index routerCapacity = 4;
    /** Clock frequency (the paper synthesizes at 500 MHz). */
    Real clockGhz = 0.5;
    /** DNC timesteps folded into one bAbI-style "test". */
    Index stepsPerTest = 1;

    /** Derive the default partitions and validate divisibility. */
    void
    finalize()
    {
        dnc.validate();
        if (extPartition.tiles() != tiles)
            extPartition = Partition::rowWise(tiles);
        if (linkPartition.tiles() != tiles)
            linkPartition = optimizeLinkagePartition(dnc.memoryRows, tiles);
        if (dnc.memoryRows % tiles != 0)
            HIMA_FATAL("N=%zu not divisible by Nt=%zu", dnc.memoryRows,
                       tiles);
    }

    /** Rows of external memory per tile. */
    Index rowsPerTile() const { return dnc.memoryRows / tiles; }
};

/** Named prototype presets used throughout the benches. */
ArchConfig himaBaselineConfig(Index tiles = 16);  ///< H-tree, no features
ArchConfig himaDncConfig(Index tiles = 16);       ///< all arch features
ArchConfig himaDncDConfig(Index tiles = 16);      ///< + DNC-D model

} // namespace hima

#endif // HIMA_ARCH_ARCH_CONFIG_H
