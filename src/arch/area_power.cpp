#include "arch/area_power.h"

namespace hima {

namespace {

/** Area of one SRAM macro of the given capacity. */
Real
macroMm2(const TechParams &tech, Real kb)
{
    return tech.sramPeripheryMm2 + tech.sramSlopeMm2PerKb * kb;
}

} // namespace

TileMemoryFootprint
tileMemoryFootprint(const ArchConfig &config)
{
    const Real wordBytes = 4.0; // 32-bit datapath
    const Index n = config.dnc.memoryRows;
    const Index w = config.dnc.memoryWidth;
    const Index r = config.dnc.readHeads;
    const Index nt = config.tiles;
    const Index localRows = n / nt;

    TileMemoryFootprint fp;
    fp.extKb = static_cast<Real>(localRows * w) * wordBytes / 1024.0;

    if (config.distributed) {
        // DNC-D: linkage is purely local, (N/Nt) x (N/Nt) per tile.
        fp.linkageKb = static_cast<Real>(localRows * localRows) * wordBytes /
                       1024.0;
    } else {
        // DNC: the N x N linkage is sharded submatrix-wise, N^2 / Nt
        // words per tile regardless of the block shape.
        fp.linkageKb =
            static_cast<Real>(n) * n / static_cast<Real>(nt) * wordBytes /
            1024.0;
    }

    // usage + precedence + write weighting + R read weightings, each a
    // local slice of N/Nt words ("multiple 256 B state memories").
    fp.smallStateKb = static_cast<Real>(localRows * (3 + r)) * wordBytes /
                      1024.0;
    return fp;
}

AreaReport
areaReport(const ArchConfig &config, const TechParams &tech)
{
    const TileMemoryFootprint fp = tileMemoryFootprint(config);

    AreaReport report;

    // PT memory system: one macro for the external bank, one for the
    // linkage bank, and one per small state memory (3 + R of them).
    const Real smallMacros = static_cast<Real>(3 + config.dnc.readHeads);
    report.ptMemMm2 = macroMm2(tech, fp.extKb) +
                      macroMm2(tech, fp.linkageKb) +
                      smallMacros *
                          macroMm2(tech, fp.smallStateKb / smallMacros);

    // PT logic: M-M engine, router, optional local sorter, other logic.
    // The H-tree router is larger than the mode-gated HiMA router (it
    // carries wide tree ports); DNC-D's CT-PT-only router is smallest.
    Real routerMm2;
    if (config.distributed)
        routerMm2 = tech.routerSimpleMm2;
    else if (config.noc == NocKind::Hima)
        routerMm2 = tech.routerMm2;
    else
        routerMm2 = tech.routerMm2 + 0.13; // H-tree/star wide-port router

    report.ptMm2 = report.ptMemMm2 + tech.peArrayMm2 + routerMm2 +
                   (config.twoStageSort ? tech.mdsaSorterMm2 : 0.0) +
                   tech.tileOtherMm2;

    // Controller tile: LSTM engine + the global sort stage (merge sorter
    // for two-stage, a larger centralized sorter otherwise) + misc. DNC-D
    // eliminates the global sort entirely.
    Real ctSortMm2 = 0.0;
    if (!config.distributed)
        ctSortMm2 = config.twoStageSort ? tech.ctSorterMm2
                                        : tech.ctSorterMm2 - 0.09;
    report.ctMm2 = tech.ctLstmMm2 + ctSortMm2 + tech.ctOtherMm2;

    report.totalMm2 =
        static_cast<Real>(config.tiles) * report.ptMm2 + report.ctMm2;
    return report;
}

ArchConfig
himaBaselineConfig(Index tiles)
{
    ArchConfig cfg;
    cfg.tiles = tiles;
    cfg.noc = NocKind::HTree;
    cfg.multiModeRouting = false;
    cfg.extPartition = Partition::rowWise(tiles);
    cfg.linkPartition = Partition::rowWise(tiles);
    cfg.twoStageSort = false;
    cfg.distributed = false;
    cfg.finalize();
    return cfg;
}

ArchConfig
himaDncConfig(Index tiles)
{
    ArchConfig cfg;
    cfg.tiles = tiles;
    cfg.noc = NocKind::Hima;
    cfg.multiModeRouting = true;
    cfg.extPartition = Partition::rowWise(tiles);
    cfg.linkPartition = optimizeLinkagePartition(cfg.dnc.memoryRows, tiles);
    cfg.twoStageSort = true;
    cfg.distributed = false;
    cfg.finalize();
    return cfg;
}

ArchConfig
himaDncDConfig(Index tiles)
{
    ArchConfig cfg = himaDncConfig(tiles);
    cfg.distributed = true;
    cfg.finalize();
    return cfg;
}

} // namespace hima
