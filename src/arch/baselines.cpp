#include "arch/baselines.h"

namespace hima {

PlatformRecord
farmRecord()
{
    // Farm [4]: centralized mixed-signal DNC accelerator. The paper
    // reports it 68.5x faster than the 3080Ti GPU with N capped at 256;
    // its 40nm-equivalent area and power are back-derived from the
    // paper's normalized comparisons (HiMA-baseline = 3.16x Farm area;
    // MANNA = 32x Farm power).
    return {"Farm", 75.3, 25.0, 0.50, 40.0, 256};
}

PlatformRecord
mannaRecord()
{
    // MANNA [33]: 16-tile H-tree NTM accelerator in 15 nm. Speed is
    // "similar to Farm"; area/power follow from the paper's 11x-area /
    // 32x-power-of-Farm statement (physical area stored at 15 nm so the
    // node normalization reproduces the 40nm-equivalent 284 mm^2).
    return {"MANNA", 76.3, 40.0, 16.0, 15.0, 5120};
}

PlatformRecord
gpuRecord()
{
    // Nvidia 3080Ti, measured by the paper at 5.16 ms/test on bAbI.
    return {"GPU (3080Ti)", 5160.0, 0.0, 350.0, 8.0, 0};
}

PlatformRecord
cpuRecord()
{
    // Intel i7-9700K, 10.94 ms/test (2.12x slower than the GPU).
    return {"CPU (i7-9700K)", 10940.0, 0.0, 95.0, 14.0, 0};
}

PlatformRecord
himaRecord(const std::string &name, HimaEngine &engine)
{
    PlatformRecord rec;
    rec.name = name;
    rec.inferenceUsPerTest = engine.testLatencyUs();
    rec.areaMm2 = engine.area().totalMm2;
    rec.powerW = engine.power().totalW;
    rec.techNm = 40.0;
    rec.memoryRows = engine.config().dnc.memoryRows;
    return rec;
}

Real
normalizedArea(const PlatformRecord &rec, Real targetNm)
{
    const Real scale = targetNm / rec.techNm;
    return rec.areaMm2 * scale * scale;
}

Real
GpuKernelModel::efficiency(KernelCategory cat) const
{
    // Fractions of peak sustained per kernel class. These fold in kernel
    // launch overhead and serialization: the usage sort / allocation
    // chain is nearly serial on a GPU (hence the minuscule value), while
    // the linkage/forward-backward dense matrix work runs near peak —
    // reproducing the paper's observation that history-based *write*
    // weighting eats 72% of GPU time while history-based *read*
    // weighting, despite ~500x more raw ops, takes only 9%.
    switch (cat) {
      case KernelCategory::HistoryWrite: return 5.6e-7;
      case KernelCategory::HistoryRead: return 2.25e-3;
      case KernelCategory::ContentWeighting: return 8.8e-5;
      case KernelCategory::MemoryAccess: return 2.1e-4;
      case KernelCategory::Nn: return 4.0e-4;
      default: HIMA_PANIC("bad category %d", static_cast<int>(cat));
    }
}

std::array<Real, static_cast<int>(KernelCategory::NumCategories)>
GpuKernelModel::categorySeconds(const KernelProfiler &profile) const
{
    std::array<Real, static_cast<int>(KernelCategory::NumCategories)> out{};
    for (int c = 0; c < static_cast<int>(KernelCategory::NumCategories);
         ++c) {
        const auto cat = static_cast<KernelCategory>(c);
        const KernelCounters total = profile.categoryTotal(cat);
        out[c] = static_cast<Real>(total.totalOps()) /
                 (peakOpsPerSec * efficiency(cat));
    }
    return out;
}

} // namespace hima
