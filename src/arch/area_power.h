/**
 * @file
 * Silicon area and power model (40 nm, 500 MHz), replacing the paper's
 * synthesis + Ansys PowerArtist flow with an analytic model.
 *
 * Area: affine SRAM-macro model (periphery + bit-cell slope) plus fixed
 * per-module logic areas, calibrated so HiMA-DNC at Nt = 16 lands on the
 * paper's Fig. 11(e) (PT 5.01 mm^2, PT mem 2.07 mm^2, CT 0.52 mm^2,
 * total 80.69 mm^2).
 *
 * Power: dynamic energy per primitive op / memory word / flit-hop taken
 * from 40 nm design-practice values, plus per-area leakage. Relative
 * deltas between configurations come from measured counts; the absolute
 * scale is calibrated to the paper's 16.96 W HiMA-DNC operating point.
 */

#ifndef HIMA_ARCH_AREA_POWER_H
#define HIMA_ARCH_AREA_POWER_H

#include "arch/arch_config.h"

namespace hima {

/** Technology constants (40 nm unless noted). */
struct TechParams
{
    // --- SRAM area: mm^2 = periphery + slope * KB ---------------------
    Real sramPeripheryMm2 = 0.045;   ///< per macro
    Real sramSlopeMm2PerKb = 0.0066; ///< bit-cell array slope

    // --- logic areas (mm^2) -------------------------------------------
    Real peArrayMm2 = 1.95;        ///< M-M engine (256-MAC array + CPT)
    Real routerMm2 = 0.42;         ///< 8-way multi-mode router
    Real routerSimpleMm2 = 0.12;   ///< CT-PT-only router (DNC-D)
    Real mdsaSorterMm2 = 0.22;     ///< per-PT local sorter
    Real tileOtherMm2 = 0.30;      ///< buffers, loaders, interface logic
    Real ctLstmMm2 = 0.13;         ///< CT LSTM engine + interface logic
    Real ctSorterMm2 = 0.34;       ///< global merge sorter + usage bufs
    Real ctOtherMm2 = 0.05;

    // --- dynamic energy (pJ) at 32-bit ---------------------------------
    Real macPj = 6.0;
    Real elemPj = 2.4;
    Real sfuPj = 15.0;
    Real comparePj = 0.8;
    Real extMemPj = 8.0;     ///< per word, external memory bank
    Real stateMemPj = 5.0;   ///< per word, small state memories
    Real linkageMemPj = 3.2; ///< per word, the large linkage bank
    Real flitHopPj = 2.6;    ///< per flit per router hop

    // --- static power ---------------------------------------------------
    Real leakageWPerMm2 = 0.018;
    /** Router idle power when all ports are active, per PT (W). */
    Real routerIdleW = 0.200;
    /** Port-gating saving factor under multi-mode routing. */
    Real modeGatingFactor = 0.45;
    /** MDSA local sorter clock/idle power per PT when present (W). */
    Real sorterIdleW = 0.060;
};

/** Per-module area report (Fig. 11(e)). */
struct AreaReport
{
    Real ptMemMm2;    ///< one PT's memory system
    Real ptMm2;       ///< one full PT
    Real ctMm2;       ///< the controller tile
    Real totalMm2;    ///< Nt PTs + CT
};

/** Per-module energy for one test (Fig. 11(f) numerator). */
struct ModuleEnergy
{
    Real ptMemJ;
    Real ptRouterJ;
    Real ptEngineJ;
    Real ptOtherJ;
    Real ctJ;

    Real total() const
    {
        return ptMemJ + ptRouterJ + ptEngineJ + ptOtherJ + ctJ;
    }
};

/** State-memory footprint per PT in KB (32-bit words). */
struct TileMemoryFootprint
{
    Real extKb;
    Real linkageKb;
    Real smallStateKb;
    Real total() const { return extKb + linkageKb + smallStateKb; }
};

/** Compute the per-PT memory footprint for a configuration. */
TileMemoryFootprint tileMemoryFootprint(const ArchConfig &config);

/** Area of one configuration under the technology model. */
AreaReport areaReport(const ArchConfig &config,
                      const TechParams &tech = TechParams{});

} // namespace hima

#endif // HIMA_ARCH_AREA_POWER_H
