/**
 * @file
 * Comparison points for Fig. 4 and Fig. 12: the MANNA and Farm
 * accelerators, and analytic GPU / measured-CPU platform models.
 *
 * MANNA [33] (15 nm, 16-tile H-tree NTM accelerator) and Farm [4] (40 nm
 * equivalent, centralized mixed-signal, N <= 256) are reconstructed as
 * behavioural models from their papers' published specs; we cannot
 * re-synthesize them. Their headline numbers act as fixed comparison
 * anchors (documented constants below), while every HiMA number in the
 * comparison is *measured* from our engine. Area normalization across
 * process nodes follows the paper's practice (scaling by the square of
 * the feature-size ratio).
 *
 * The GPU model is an analytic parallel-processor model: each kernel
 * class runs at a class-specific parallel efficiency on a fixed-FLOP
 * device; sorting parallelizes poorly, dense mat-vec superbly — which is
 * precisely the Fig. 4 observation (history-based write weighting eats
 * 72% of GPU time). The CPU "model" is a real measurement: the functional
 * DNC's per-kernel wall-clock profile on the host.
 */

#ifndef HIMA_ARCH_BASELINES_H
#define HIMA_ARCH_BASELINES_H

#include <array>
#include <string>
#include <vector>

#include "arch/engine.h"

namespace hima {

/** One platform's comparison record (Fig. 12(b)-(d)). */
struct PlatformRecord
{
    std::string name;
    Real inferenceUsPerTest; ///< bAbI-style test latency
    Real areaMm2;            ///< 0 for CPU/GPU (not compared)
    Real powerW;
    Real techNm;             ///< process node for area normalization
    Index memoryRows;        ///< largest supported N
};

/** Published anchors for the prior accelerators (see file header). */
PlatformRecord farmRecord();
PlatformRecord mannaRecord();

/** GPU / CPU platform anchors (Nvidia 3080Ti, Intel i7-9700K). */
PlatformRecord gpuRecord();
PlatformRecord cpuRecord();

/** HiMA records measured from the engine. */
PlatformRecord himaRecord(const std::string &name, HimaEngine &engine);

/** Area normalized to the given node (quadratic feature-size scaling). */
Real normalizedArea(const PlatformRecord &rec, Real targetNm);

/**
 * Analytic GPU kernel-runtime model for Fig. 4: per-category time for one
 * DNC step given the functional model's op counts.
 */
struct GpuKernelModel
{
    /** Device throughput in effective ops/s for perfectly parallel work. */
    Real peakOpsPerSec = 1.2e13;

    /**
     * Parallel efficiency per kernel category: the fraction of peak the
     * category sustains. Sorting-dominated history-write work is nearly
     * serial on a GPU; dense matrix work is nearly ideal.
     */
    Real efficiency(KernelCategory cat) const;

    /** Seconds per category for the given measured profile. */
    std::array<Real, static_cast<int>(KernelCategory::NumCategories)>
    categorySeconds(const KernelProfiler &profile) const;
};

} // namespace hima

#endif // HIMA_ARCH_BASELINES_H
