/**
 * @file
 * Traffic-pattern generators for the DNC primitives (Sec. 4.1).
 *
 * Each generator emits the message batch one primitive injects, expressed
 * over a topology's tile placement:
 *
 *   broadcast           CT -> every PT            (interface vectors)
 *   gather              every PT -> CT            (read vectors, psums)
 *   gatherBroadcast     gather, then dependent broadcast (softmax global)
 *   ringAccumulate      PT_i -> PT_{i+1} chain    (acc-prod / inner prod)
 *   allToAll            every PT -> every other   (mat-vec, outer prod)
 *   transposePairs      PT_(i,j) -> PT_(j,i)      (matrix transpose)
 */

#ifndef HIMA_NOC_TRAFFIC_H
#define HIMA_NOC_TRAFFIC_H

#include "noc/network.h"

namespace hima {

/**
 * CT to every PT, `flits` each. A non-zero `group` makes it a tree
 * multicast: one stream replicated at router branch points.
 */
std::vector<Message> broadcast(const Topology &topo, std::uint64_t flits,
                               std::uint64_t group = 0);

/**
 * Every PT to CT, `flits` each. A non-zero `group` models in-network
 * reduction (associative psum combining on the way in).
 */
std::vector<Message> gather(const Topology &topo, std::uint64_t flits,
                            std::uint64_t group = 0);

/**
 * Gather psums to CT then broadcast the reduced result back; the
 * broadcast depends on every gather message (the softmax global-sum
 * round trip of content weighting). Non-zero groups enable in-network
 * reduction for the gather and tree multicast for the broadcast.
 */
std::vector<Message> gatherBroadcast(const Topology &topo,
                                     std::uint64_t gatherFlits,
                                     std::uint64_t broadcastFlits,
                                     std::uint64_t gatherGroup = 0,
                                     std::uint64_t broadcastGroup = 0);

/** Dependent chain PT_0 -> PT_1 -> ... -> PT_{Nt-1}, `flits` per hop. */
std::vector<Message> ringAccumulate(const Topology &topo,
                                    std::uint64_t flits);

/** Every PT sends `flits` to every other PT. */
std::vector<Message> allToAll(const Topology &topo, std::uint64_t flits);

/**
 * Tile-grid transpose: PT at logical grid position (i, j) sends its
 * submatrix to the PT at (j, i). The logical grid is the most-square
 * factorization of the PT count; diagonal tiles stay silent.
 */
std::vector<Message> transposePairs(const Topology &topo,
                                    std::uint64_t flits);

} // namespace hima

#endif // HIMA_NOC_TRAFFIC_H
