#include "noc/network.h"

#include <algorithm>
#include <map>
#include <numeric>

namespace hima {

Network::Network(const Topology &topology, std::uint64_t transitCapacity)
    : topology_(topology), transitCapacity_(transitCapacity)
{
    HIMA_ASSERT(transitCapacity_ > 0, "router needs non-zero capacity");
}

TrafficResult
Network::run(const std::vector<Message> &messages, NocMode mode)
{
    const Index count = messages.size();

    // Topologically order the dependency DAG (stable by injection cycle,
    // then batch order, among ready messages).
    std::vector<Index> indegree(count, 0);
    std::vector<std::vector<Index>> dependents(count);
    for (Index i = 0; i < count; ++i) {
        for (Index dep : messages[i].dependsOn) {
            HIMA_ASSERT(dep < count, "dependency %zu out of batch", dep);
            HIMA_ASSERT(dep != i, "message depends on itself");
            ++indegree[i];
            dependents[dep].push_back(i);
        }
    }

    auto readyOrder = [&](Index a, Index b) {
        if (messages[a].injectCycle != messages[b].injectCycle)
            return messages[a].injectCycle > messages[b].injectCycle;
        return a > b; // min-heap by batch order
    };
    std::vector<Index> heap;
    for (Index i = 0; i < count; ++i)
        if (indegree[i] == 0)
            heap.push_back(i);
    std::make_heap(heap.begin(), heap.end(), readyOrder);

    // Reservation schedules: the cycle each resource becomes free.
    std::vector<Cycle> linkFree(topology_.links().size(), 0);
    std::vector<Cycle> injectFree(topology_.nodeCount(), 0);
    std::vector<Cycle> ejectFree(topology_.nodeCount(), 0);
    std::vector<Cycle> depReady(count, 0);

    // Stream-sharing state: resources already carrying a group's stream
    // record the head-exit / completion time for later group members.
    using GroupKey = std::pair<std::uint64_t, Index>;
    std::map<GroupKey, Cycle> groupInject; // (group, node) -> start
    std::map<GroupKey, Cycle> groupLink;   // (group, link) -> head out
    std::map<GroupKey, Cycle> groupEject;  // (group, node) -> tail in

    // Router crossbar occupancy for through traffic.
    std::vector<Cycle> nodeFree(topology_.nodeCount(), 0);

    TrafficResult result;
    result.deliveries.assign(count, {0, 0});
    result.makespan = 0;
    result.flitHops = 0;

    Index processed = 0;
    while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), readyOrder);
        const Index mi = heap.back();
        heap.pop_back();
        ++processed;

        const Message &msg = messages[mi];
        HIMA_ASSERT(msg.flits > 0, "zero-flit message");

        Cycle ready = std::max<Cycle>(msg.injectCycle, depReady[mi]);

        if (msg.src == msg.dst) {
            // Local delivery: no NoC resources, zero latency.
            result.deliveries[mi] = {ready, ready};
        } else {
            const std::vector<Index> path =
                topology_.route(msg.src, msg.dst, mode);
            const std::uint64_t group = msg.shareGroup;

            // Injection port serializes the full message; a group-mate
            // from the same source rides the already-flowing stream.
            Cycle start;
            auto injKey = GroupKey{group, msg.src};
            auto injIt = group ? groupInject.find(injKey)
                               : groupInject.end();
            if (group && injIt != groupInject.end()) {
                start = std::max(ready, injIt->second);
            } else {
                start = std::max(ready, injectFree[msg.src]);
                injectFree[msg.src] = start + msg.flits;
                if (group)
                    groupInject[injKey] = start;
            }

            // Head flit advances hop by hop; each link stays busy for
            // the full flit count (wormhole occupancy) unless the group
            // already reserved it (replicated / reduced stream). At each
            // intermediate router the stream also occupies the crossbar
            // for flits / transitCapacity cycles — the star-hub /
            // H-tree-root congestion mechanism.
            const Cycle transit =
                (msg.flits + transitCapacity_ - 1) / transitCapacity_;
            Cycle head = start;
            for (Index pi = 0; pi < path.size(); ++pi) {
                const Index l = path[pi];

                auto linkKey = GroupKey{group, l};
                auto linkIt = group ? groupLink.find(linkKey)
                                    : groupLink.end();
                if (group && linkIt != groupLink.end()) {
                    head = std::max(head, linkIt->second);
                    continue;
                }

                // Reserving a fresh output: a through router spends
                // crossbar time per *distinct outgoing stream*, so a hub
                // replicating a multicast to many ports pays for each —
                // the star-hub / H-tree-root congestion mechanism.
                if (pi > 0) {
                    const NodeId node = topology_.links()[l].from;
                    head = std::max(head, nodeFree[node]);
                    nodeFree[node] = head + transit;
                }

                head = std::max(head, linkFree[l]);
                linkFree[l] = head + msg.flits;
                head += 1; // router + link traversal for the head flit
                result.flitHops += msg.flits;
                if (group)
                    groupLink[linkKey] = head;
            }

            // Ejection port at the destination (shared per group: a
            // reduced stream arrives once).
            Cycle tail;
            auto ejKey = GroupKey{group, msg.dst};
            auto ejIt = group ? groupEject.find(ejKey) : groupEject.end();
            if (group && ejIt != groupEject.end()) {
                tail = std::max(ejIt->second, head);
            } else {
                Cycle eject = std::max(head, ejectFree[msg.dst]);
                tail = eject + msg.flits - 1;
                ejectFree[msg.dst] = tail + 1;
                if (group)
                    groupEject[ejKey] = tail;
            }

            result.deliveries[mi] = {start, tail};
        }

        const Cycle done = result.deliveries[mi].delivered;
        result.makespan = std::max(result.makespan, done);
        for (Index dep : dependents[mi]) {
            depReady[dep] = std::max(depReady[dep], done);
            if (--indegree[dep] == 0) {
                heap.push_back(dep);
                std::push_heap(heap.begin(), heap.end(), readyOrder);
            }
        }
    }
    HIMA_ASSERT(processed == count, "dependency cycle in message batch");

    result.maxLinkBusy =
        linkFree.empty() ? 0 : *std::max_element(linkFree.begin(),
                                                 linkFree.end());

    stats_.inc("noc.batches");
    stats_.inc("noc.messages", count);
    stats_.inc("noc.flit_hops", result.flitHops);
    return result;
}

} // namespace hima
