#include "noc/topology.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"

namespace hima {

const char *
nocKindName(NocKind kind)
{
    switch (kind) {
      case NocKind::HTree: return "H-Tree";
      case NocKind::BinaryTree: return "Binary-Tree";
      case NocKind::Mesh: return "Mesh";
      case NocKind::Star: return "Star";
      case NocKind::Ring: return "Ring";
      case NocKind::Hima: return "HiMA";
      default: HIMA_PANIC("bad NocKind %d", static_cast<int>(kind));
    }
}

const char *
nocModeName(NocMode mode)
{
    switch (mode) {
      case NocMode::Star: return "star";
      case NocMode::RingMode: return "ring";
      case NocMode::Diagonal: return "diagonal";
      case NocMode::Full: return "full";
      default: HIMA_PANIC("bad NocMode %d", static_cast<int>(mode));
    }
}

void
Topology::addBidirectional(NodeId a, NodeId b, bool diagonal)
{
    links_.push_back({a, b, diagonal});
    links_.push_back({b, a, diagonal});
}

Topology
Topology::buildMeshLike(Index tiles, bool diagonals)
{
    Topology t;
    t.kind_ = diagonals ? NocKind::Hima : NocKind::Mesh;

    const Index total = tiles + 1; // PTs + CT
    const Index w = static_cast<Index>(
        std::ceil(std::sqrt(static_cast<double>(total))));
    const Index h = (total + w - 1) / w;
    t.gridWidth_ = w;
    t.gridHeight_ = h;
    t.nodeCount_ = w * h;

    t.nodeRow_.resize(t.nodeCount_);
    t.nodeCol_.resize(t.nodeCount_);
    for (Index n = 0; n < t.nodeCount_; ++n) {
        t.nodeRow_[n] = n / w;
        t.nodeCol_[n] = n % w;
    }

    // Controller tile at the grid center (Fig. 9); PTs fill the rest in
    // row-major order, leaving any surplus grid nodes as pure routers.
    t.controllerNode_ = (h / 2) * w + w / 2;
    for (Index n = 0; n < t.nodeCount_ && t.processingTiles_.size() < tiles;
         ++n) {
        if (n != t.controllerNode_)
            t.processingTiles_.push_back(n);
    }
    HIMA_ASSERT(t.processingTiles_.size() == tiles,
                "mesh placement lost tiles");

    for (Index r = 0; r < h; ++r) {
        for (Index c = 0; c < w; ++c) {
            const NodeId n = r * w + c;
            if (c + 1 < w)
                t.addBidirectional(n, n + 1);
            if (r + 1 < h)
                t.addBidirectional(n, n + w);
            if (diagonals) {
                if (r + 1 < h && c + 1 < w)
                    t.addBidirectional(n, n + w + 1, true); // NW-SE
                if (r + 1 < h && c >= 1)
                    t.addBidirectional(n, n + w - 1, true); // NE-SW
            }
        }
    }

    t.buildRoutingTables();
    return t;
}

Topology
Topology::buildTree(Index tiles, bool lateralLinks)
{
    Topology t;
    t.kind_ = lateralLinks ? NocKind::BinaryTree : NocKind::HTree;

    // Complete binary tree with >= tiles leaves; leaves host PTs, the
    // root hosts the CT, internal nodes are pure routers.
    Index leaves = 1;
    while (leaves < tiles)
        leaves <<= 1;
    const Index internal = leaves - 1;
    t.nodeCount_ = internal + leaves;
    t.controllerNode_ = 0;

    for (Index leaf = 0; leaf < tiles; ++leaf)
        t.processingTiles_.push_back(internal + leaf);

    // Heap indexing: children of node i are 2i+1 and 2i+2.
    for (Index n = 0; n < internal; ++n) {
        t.addBidirectional(n, 2 * n + 1);
        t.addBidirectional(n, 2 * n + 2);
    }

    if (lateralLinks) {
        // MAERI-style lateral links between horizontally adjacent nodes
        // of the same tree level.
        for (Index levelStart = 1, levelSize = 2;
             levelStart < t.nodeCount_;
             levelStart += levelSize, levelSize <<= 1) {
            const Index end =
                std::min(levelStart + levelSize, t.nodeCount_);
            for (Index n = levelStart; n + 1 < end; ++n)
                t.addBidirectional(n, n + 1);
        }
    }

    t.buildRoutingTables();
    return t;
}

Topology
Topology::buildStar(Index tiles)
{
    Topology t;
    t.kind_ = NocKind::Star;
    t.nodeCount_ = tiles + 1;
    t.controllerNode_ = 0;
    for (Index i = 1; i <= tiles; ++i) {
        t.processingTiles_.push_back(i);
        t.addBidirectional(0, i);
    }
    t.buildRoutingTables();
    return t;
}

Topology
Topology::buildRing(Index tiles)
{
    Topology t;
    t.kind_ = NocKind::Ring;
    t.nodeCount_ = tiles + 1;
    t.controllerNode_ = 0;
    for (Index i = 1; i <= tiles; ++i)
        t.processingTiles_.push_back(i);
    for (Index i = 0; i < t.nodeCount_; ++i)
        t.addBidirectional(i, (i + 1) % t.nodeCount_);
    t.buildRoutingTables();
    return t;
}

Topology
Topology::build(NocKind kind, Index tiles)
{
    HIMA_ASSERT(tiles >= 1, "need at least one processing tile");
    switch (kind) {
      case NocKind::HTree: return buildTree(tiles, false);
      case NocKind::BinaryTree: return buildTree(tiles, true);
      case NocKind::Mesh: return buildMeshLike(tiles, false);
      case NocKind::Star: return buildStar(tiles);
      case NocKind::Ring: return buildRing(tiles);
      case NocKind::Hima: return buildMeshLike(tiles, true);
      default: HIMA_PANIC("bad NocKind %d", static_cast<int>(kind));
    }
}

bool
Topology::supportsMode(NocMode mode) const
{
    return kind_ == NocKind::Hima || mode == NocMode::Full;
}

bool
Topology::linkEnabled(const Link &link, NocMode mode) const
{
    if (kind_ != NocKind::Hima || mode == NocMode::Full)
        return true;

    const Index fr = nodeRow_[link.from], fc = nodeCol_[link.from];
    const Index tr = nodeRow_[link.to], tc = nodeCol_[link.to];

    switch (mode) {
      case NocMode::Star:
        // CT-rooted traffic: mesh links only; the router powers its
        // diagonal ports down.
        return !link.diagonal;
      case NocMode::RingMode: {
        // Boustrophedon (snake) chain through the grid: east/west links
        // within rows plus the row-end column links that stitch rows.
        if (link.diagonal)
            return false;
        if (fr == tr)
            return true; // all horizontal links lie on the snake
        // Vertical link: enabled only at the snake's turning columns.
        const Index turnCol = (std::min(fr, tr) % 2 == 0)
                                  ? gridWidth_ - 1
                                  : 0;
        return fc == turnCol && tc == turnCol;
      }
      case NocMode::Diagonal:
        // Transpose traffic: northeast/southwest diagonal ports only.
        // A NE/SW link changes row and column in opposite directions.
        return link.diagonal &&
               ((tr > fr && tc < fc) || (tr < fr && tc > fc));
      default:
        return true;
    }
}

void
Topology::buildRoutingTables()
{
    constexpr int kNumModes = 4;
    nextHop_.assign(kNumModes,
                    std::vector<std::vector<Index>>(
                        nodeCount_, std::vector<Index>(nodeCount_,
                                                       kNoRoute)));

    // Per-node outgoing link lists.
    std::vector<std::vector<Index>> outLinks(nodeCount_);
    for (Index l = 0; l < links_.size(); ++l)
        outLinks[links_[l].from].push_back(l);

    for (int m = 0; m < kNumModes; ++m) {
        const auto mode = static_cast<NocMode>(m);
        if (!supportsMode(mode))
            continue;
        // BFS from every destination over *reversed* enabled links so the
        // table stores the forward next hop.
        for (NodeId dst = 0; dst < nodeCount_; ++dst) {
            std::vector<Index> dist(nodeCount_, kNoRoute);
            std::queue<NodeId> frontier;
            dist[dst] = 0;
            frontier.push(dst);
            while (!frontier.empty()) {
                const NodeId cur = frontier.front();
                frontier.pop();
                // Expand over links *into* cur: from -> cur.
                for (Index l = 0; l < links_.size(); ++l) {
                    const Link &link = links_[l];
                    if (link.to != cur || !linkEnabled(link, mode))
                        continue;
                    if (dist[link.from] != kNoRoute)
                        continue;
                    dist[link.from] = dist[cur] + 1;
                    nextHop_[m][link.from][dst] = l;
                    frontier.push(link.from);
                }
            }
        }
    }
}

std::vector<Index>
Topology::route(NodeId src, NodeId dst, NocMode mode) const
{
    HIMA_ASSERT(src < nodeCount_ && dst < nodeCount_, "route endpoints");
    HIMA_ASSERT(supportsMode(mode), "%s NoC has no %s mode",
                nocKindName(kind_), nocModeName(mode));

    std::vector<Index> path;
    NodeId cur = src;
    const auto &table = nextHop_[static_cast<int>(mode)];
    while (cur != dst) {
        const Index l = table[cur][dst];
        HIMA_ASSERT(l != kNoRoute,
                    "no %s-mode route from node %zu to node %zu",
                    nocModeName(mode), src, dst);
        path.push_back(l);
        cur = links_[l].to;
        HIMA_ASSERT(path.size() <= nodeCount_, "routing loop");
    }
    return path;
}

Index
Topology::hops(NodeId src, NodeId dst, NocMode mode) const
{
    return route(src, dst, mode).size();
}

Index
Topology::worstCaseHops(NocMode mode) const
{
    std::vector<NodeId> tiles = processingTiles_;
    tiles.push_back(controllerNode_);
    Index worst = 0;
    for (NodeId a : tiles)
        for (NodeId b : tiles)
            if (a != b)
                worst = std::max(worst, hops(a, b, mode));
    return worst;
}

} // namespace hima
