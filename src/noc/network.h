/**
 * @file
 * Cycle-level NoC contention simulator.
 *
 * Wormhole-style model: a message of F flits serializes for F cycles on
 * its source injection port, on every link of its route and on the
 * destination ejection port; the head flit pays one router cycle per hop
 * (zero-extra when the feed-through bypass finds the output free, which
 * the reservation model captures naturally because an uncontended link
 * adds exactly one head cycle). Contention appears as links/ports being
 * busy when the head arrives — the H-tree root congestion of Fig. 5 falls
 * out of this without any special-casing.
 *
 * Messages may depend on earlier messages (ring accumulation, gather-
 * then-broadcast), forming a DAG that the simulator resolves.
 */

#ifndef HIMA_NOC_NETWORK_H
#define HIMA_NOC_NETWORK_H

#include <cstdint>

#include "common/stats.h"
#include "noc/topology.h"

namespace hima {

using Cycle = std::uint64_t;

/** One message to deliver. */
struct Message
{
    NodeId src;
    NodeId dst;
    /** Payload size in flits (one flit = one 32-bit word). */
    std::uint64_t flits;
    /** Earliest cycle the message may inject. */
    Cycle injectCycle = 0;
    /** Indices (into the submitted batch) this message must wait for. */
    std::vector<Index> dependsOn;
    /**
     * Stream-sharing group (0 = none). Messages in the same group share
     * every NoC resource they have in common: a shared source shares the
     * injection port (tree multicast — the router replicates the stream
     * at branch points), a shared link is reserved once for the whole
     * group (multicast fan-out or in-network reduction fan-in), and a
     * shared destination shares the ejection port (the reduced stream
     * arrives once). This models HiMA's broadcast/collect support and
     * in-network reduction of associative psum/read-vector combines.
     */
    std::uint64_t shareGroup = 0;
};

/** Delivery record for one message. */
struct Delivery
{
    Cycle injected;  ///< cycle the head flit left the source
    Cycle delivered; ///< cycle the tail flit reached the destination
};

/** Result of simulating one batch of messages. */
struct TrafficResult
{
    /** Per-message delivery records, batch order. */
    std::vector<Delivery> deliveries;
    /** Cycle the last tail flit arrived (the batch makespan). */
    Cycle makespan;
    /** Total flit-hops routed (router energy-model input). */
    std::uint64_t flitHops;
    /** Busy cycles of the most contended link. */
    Cycle maxLinkBusy;
};

/** Contention simulator bound to one topology. */
class Network
{
  public:
    /**
     * @param topology        the routed graph to simulate on
     * @param transitCapacity flits per cycle one router can switch for
     *        *through* traffic. This is what makes a star hub or an
     *        H-tree root a congestion point: every transit message
     *        reserves flits / capacity cycles of the router's crossbar.
     */
    explicit Network(const Topology &topology,
                     std::uint64_t transitCapacity = 4);

    /**
     * Simulate a batch of messages under the given router mode.
     *
     * Messages are processed in dependency order (and injection-cycle
     * order among independents), greedily reserving ports and links —
     * a deterministic approximation of cycle-by-cycle arbitration.
     */
    TrafficResult run(const std::vector<Message> &messages, NocMode mode);

    const Topology &topology() const { return topology_; }

    /** Cumulative counters across run() calls ("noc.*" namespace). */
    const StatRegistry &stats() const { return stats_; }
    void clearStats() { stats_.clear(); }

  private:
    const Topology &topology_;
    std::uint64_t transitCapacity_;
    StatRegistry stats_;
};

} // namespace hima

#endif // HIMA_NOC_NETWORK_H
