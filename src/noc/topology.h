/**
 * @file
 * NoC topology builders and per-mode routing tables (Sec. 4.1, Fig. 5).
 *
 * A Topology is a directed graph over router nodes. Some nodes host tiles
 * (the controller tile and the processing tiles); H-tree/binary-tree
 * topologies also contain pure router nodes at internal tree levels.
 *
 * The HiMA-NoC is a 2D mesh augmented with diagonal links whose routers
 * can be masked into four run-time modes (star / ring / diagonal / full).
 * Fixed topologies (H-tree, binary tree, mesh, star, ring) expose a single
 * "full" mode using all of their links.
 */

#ifndef HIMA_NOC_TOPOLOGY_H
#define HIMA_NOC_TOPOLOGY_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/tensor.h"

namespace hima {

using NodeId = Index;

/** Topology families evaluated in Fig. 5(d). */
enum class NocKind
{
    HTree,      ///< MANNA's H-tree [33]
    BinaryTree, ///< MAERI-style tree with lateral sub-tree links [22]
    Mesh,       ///< plain 2D mesh
    Star,       ///< all PTs one hop from the CT
    Ring,       ///< unidirectional ring through all tiles
    Hima,       ///< mesh + diagonals, multi-mode (this paper)
};

/** Run-time router modes of the HiMA-NoC (Fig. 5(c)). */
enum class NocMode
{
    Star,     ///< CT broadcast/collect, sorting
    RingMode, ///< accumulation, vector inner product
    Diagonal, ///< matrix transpose
    Full,     ///< mat-vec mult, vector outer product (all links)
};

const char *nocKindName(NocKind kind);
const char *nocModeName(NocMode mode);

/** One directed link. */
struct Link
{
    NodeId from;
    NodeId to;
    bool diagonal; ///< true for the HiMA diagonal links
};

/**
 * A routed topology: nodes, links, tile placement and per-mode next-hop
 * tables (BFS shortest path over the links enabled in that mode).
 */
class Topology
{
  public:
    /**
     * Build a topology of the given kind for `tiles` processing tiles
     * plus one controller tile.
     *
     * Mesh/HiMA topologies arrange PTs + CT in the most-square grid with
     * the CT at the center position (Fig. 9); tree topologies put the CT
     * at the root and the PTs at the leaves.
     */
    static Topology build(NocKind kind, Index tiles);

    NocKind kind() const { return kind_; }
    Index nodeCount() const { return nodeCount_; }
    Index tileCount() const { return processingTiles_.size(); }
    NodeId controllerNode() const { return controllerNode_; }
    const std::vector<NodeId> &processingNodes() const
    {
        return processingTiles_;
    }

    const std::vector<Link> &links() const { return links_; }

    /** Modes this topology supports (fixed NoCs only support Full). */
    bool supportsMode(NocMode mode) const;

    /**
     * Shortest-path route from src to dst under the given mode, as a
     * sequence of link indices. Empty when src == dst. Panics when the
     * mode leaves the pair disconnected (a modeling error).
     */
    std::vector<Index> route(NodeId src, NodeId dst, NocMode mode) const;

    /** Hop count of route(). */
    Index hops(NodeId src, NodeId dst, NocMode mode) const;

    /** Worst-case hop count over all tile pairs (paper: 4 for 5x5 HiMA). */
    Index worstCaseHops(NocMode mode) const;

  private:
    Topology() = default;

    void addBidirectional(NodeId a, NodeId b, bool diagonal = false);
    void buildRoutingTables();
    bool linkEnabled(const Link &link, NocMode mode) const;

    static Topology buildMeshLike(Index tiles, bool diagonals);
    static Topology buildTree(Index tiles, bool lateralLinks);
    static Topology buildStar(Index tiles);
    static Topology buildRing(Index tiles);

    NocKind kind_ = NocKind::Mesh;
    Index nodeCount_ = 0;
    NodeId controllerNode_ = 0;
    std::vector<NodeId> processingTiles_;
    std::vector<Link> links_;

    // Mesh geometry (mesh/HiMA only) for mode masks.
    Index gridWidth_ = 0;
    Index gridHeight_ = 0;
    std::vector<Index> nodeRow_;
    std::vector<Index> nodeCol_;

    // nextHop_[mode][src][dst] = link index to take, or kNoRoute.
    static constexpr Index kNoRoute = static_cast<Index>(-1);
    std::vector<std::vector<std::vector<Index>>> nextHop_;
};

} // namespace hima

#endif // HIMA_NOC_TOPOLOGY_H
