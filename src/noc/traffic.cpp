#include "noc/traffic.h"

#include <cmath>

namespace hima {

std::vector<Message>
broadcast(const Topology &topo, std::uint64_t flits, std::uint64_t group)
{
    std::vector<Message> batch;
    batch.reserve(topo.tileCount());
    for (NodeId pt : topo.processingNodes())
        batch.push_back({topo.controllerNode(), pt, flits, 0, {}, group});
    return batch;
}

std::vector<Message>
gather(const Topology &topo, std::uint64_t flits, std::uint64_t group)
{
    std::vector<Message> batch;
    batch.reserve(topo.tileCount());
    for (NodeId pt : topo.processingNodes())
        batch.push_back({pt, topo.controllerNode(), flits, 0, {}, group});
    return batch;
}

std::vector<Message>
gatherBroadcast(const Topology &topo, std::uint64_t gatherFlits,
                std::uint64_t broadcastFlits, std::uint64_t gatherGroup,
                std::uint64_t broadcastGroup)
{
    std::vector<Message> batch = gather(topo, gatherFlits, gatherGroup);
    const Index gatherCount = batch.size();
    std::vector<Index> allGathers(gatherCount);
    for (Index i = 0; i < gatherCount; ++i)
        allGathers[i] = i;
    for (NodeId pt : topo.processingNodes())
        batch.push_back({topo.controllerNode(), pt, broadcastFlits, 0,
                         allGathers, broadcastGroup});
    return batch;
}

std::vector<Message>
ringAccumulate(const Topology &topo, std::uint64_t flits)
{
    const auto &pts = topo.processingNodes();
    std::vector<Message> batch;
    batch.reserve(pts.size() > 0 ? pts.size() - 1 : 0);
    for (Index i = 0; i + 1 < pts.size(); ++i) {
        Message msg{pts[i], pts[i + 1], flits, 0, {}};
        if (i > 0)
            msg.dependsOn.push_back(i - 1);
        batch.push_back(std::move(msg));
    }
    return batch;
}

std::vector<Message>
allToAll(const Topology &topo, std::uint64_t flits)
{
    const auto &pts = topo.processingNodes();
    std::vector<Message> batch;
    batch.reserve(pts.size() * (pts.size() - 1));
    for (NodeId src : pts)
        for (NodeId dst : pts)
            if (src != dst)
                batch.push_back({src, dst, flits, 0, {}});
    return batch;
}

std::vector<Message>
transposePairs(const Topology &topo, std::uint64_t flits)
{
    const Index nt = topo.tileCount();
    // Most-square logical grid over the PT list.
    Index gw = static_cast<Index>(
        std::floor(std::sqrt(static_cast<double>(nt))));
    while (gw > 1 && nt % gw != 0)
        --gw;
    const Index gh = nt / gw;
    const Index dim = std::min(gw, gh);

    const auto &pts = topo.processingNodes();
    std::vector<Message> batch;
    for (Index i = 0; i < dim; ++i) {
        for (Index j = 0; j < dim; ++j) {
            if (i == j)
                continue; // diagonal submatrices stay put
            batch.push_back({pts[i * gw + j], pts[j * gw + i], flits, 0,
                             {}});
        }
    }
    return batch;
}

} // namespace hima
