/**
 * @file
 * Shared context stamped into every BENCH_*.json emitter, so a checked-
 * in result is self-describing: the ROADMAP's "this was a 1-hardware-
 * thread container" caveat is machine-readable (`hardware_threads`),
 * and `git_sha` pins the result to the code that produced it — the CI
 * artifact (multi-core) is distinguishable from a laptop run by its
 * fields alone.
 */

#ifndef HIMA_COMMON_BENCH_ENV_H
#define HIMA_COMMON_BENCH_ENV_H

#include <chrono>
#include <cstdio>

#include "obs/metrics.h"

namespace hima {

/** Hardware threads visible to this process (always >= 1). */
unsigned hardwareThreads();

/**
 * Abbreviated git SHA captured at CMake configure time; "unknown" when
 * the build tree was configured outside a git checkout.
 */
const char *buildGitSha();

/**
 * Write the shared context fields ("hardware_threads", "git_sha") into
 * an open JSON object, trailing comma included — call it right after
 * the opening brace.
 */
void writeBenchContext(std::FILE *json);

/**
 * Write a telemetry snapshot as one JSON object keyed by metric name:
 * counters and gauges as bare integers, histograms as
 * {count, mean, p50, p95, p99, max} summaries. The shared shape every
 * BENCH_*.json telemetry row uses.
 */
void writeTelemetrySnapshot(std::FILE *json, const obs::Snapshot &snapshot);

/**
 * Shared timing loop of the bench harnesses: run `stepFn` once to warm
 * caches/size buffers, then repeat until `minSeconds` elapse (or
 * `maxIters` as a runaway bound) and return iterations per second.
 * One copy here so every bench measures with the same methodology.
 */
template <typename StepFn>
double
benchStepsPerSecond(StepFn &&stepFn, double minSeconds = 0.25,
                    long maxIters = 200000)
{
    using Clock = std::chrono::steady_clock;
    stepFn(); // warmup
    long iters = 0;
    double elapsed = 0.0;
    const auto start = Clock::now();
    while (elapsed < minSeconds && iters < maxIters) {
        stepFn();
        ++iters;
        elapsed = std::chrono::duration<double>(Clock::now() - start).count();
    }
    return static_cast<double>(iters) / elapsed;
}

} // namespace hima

#endif // HIMA_COMMON_BENCH_ENV_H
