/**
 * @file
 * Scalar non-linearities and vector reductions shared by the DNC model and
 * the approximation modules.
 */

#ifndef HIMA_COMMON_MATH_UTIL_H
#define HIMA_COMMON_MATH_UTIL_H

#include "common/tensor.h"

namespace hima {

/** Logistic sigmoid 1 / (1 + e^-x). */
Real sigmoid(Real x);

/**
 * The DNC "oneplus" function 1 + log(1 + e^x), used to constrain key
 * strengths to [1, inf).
 */
Real oneplus(Real x);

/** Numerically-stable softmax over a vector (subtracts the max). */
Vector softmax(const Vector &x);

/**
 * Destination-passing softmax: out is resized and overwritten; out may
 * alias x. Bit-identical to softmax(x).
 */
void softmaxInto(const Vector &x, Vector &out);

/** Softmax of x scaled by a sharpness beta. */
Vector softmax(const Vector &x, Real beta);

/** Element-wise hyperbolic tangent. */
Vector tanhVec(const Vector &x);

/** Element-wise logistic sigmoid. */
Vector sigmoidVec(const Vector &x);

/** Clamp x into [lo, hi]. */
Real clamp(Real x, Real lo, Real hi);

/** True when |a - b| <= tol. */
bool nearlyEqual(Real a, Real b, Real tol = 1e-9);

} // namespace hima

#endif // HIMA_COMMON_MATH_UTIL_H
