#include "common/table.h"

#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace hima {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    HIMA_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    HIMA_ASSERT(cells.size() == headers_.size(),
                "row arity %zu != header arity %zu",
                cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::addRule()
{
    rows_.emplace_back(); // sentinel: empty row renders as a rule
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto rule = [&] {
        os << '+';
        for (std::size_t w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto emit = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << ' ' << cell << std::string(widths[c] - cell.size(), ' ')
               << " |";
        }
        os << '\n';
    };

    rule();
    emit(headers_);
    rule();
    for (const auto &row : rows_) {
        if (row.empty())
            rule();
        else
            emit(row);
    }
    rule();
}

std::string
Table::toString() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

std::string
fmtReal(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
fmtRatio(double v, int precision)
{
    return fmtReal(v, precision) + "x";
}

std::string
fmtPercent(double fraction, int precision)
{
    return fmtReal(fraction * 100.0, precision) + "%";
}

std::string
fmtCount(std::uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int digits = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (digits && digits % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++digits;
    }
    return {out.rbegin(), out.rend()};
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n=== " << title << " ===\n";
}

} // namespace hima
