#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace hima {

namespace {

void
vreport(FILE *stream, const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stream, "%s: ", tag);
    std::vfprintf(stream, fmt, args);
    std::fprintf(stream, "\n");
    std::fflush(stream);
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "panic: (%s:%d) ", file, line);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    va_end(args);
    std::abort();
}

void
assertFailImpl(const char *file, int line, const char *cond,
               const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "panic: (%s:%d) assertion '%s' failed: ", file,
                 line, cond);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    va_end(args);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "fatal: (%s:%d) ", file, line);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    va_end(args);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "warn", fmt, args);
    va_end(args);
}

void
informImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stdout, "info", fmt, args);
    va_end(args);
}

} // namespace hima
