#include "common/logging.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hima {

namespace {

/**
 * Assemble "<prefix><formatted message>\n" into one buffer and emit it
 * with a single fwrite so concurrent loggers (worker threads, the
 * coordinator, transport callbacks) never interleave mid-message.
 * POSIX guarantees stdio operations are atomic with respect to each
 * other (flockfile), but only per *call* — the old prefix/body/newline
 * triple of calls interleaved corruptly under load.
 *
 * Messages longer than the stack buffer are truncated with a marker;
 * log lines that long are a bug of their own.
 */
void
emitLine(FILE *stream, const char *prefix, const char *fmt, va_list args)
{
    char buf[2048];
    std::size_t len = 0;

    const int p = std::snprintf(buf, sizeof(buf), "%s", prefix);
    if (p > 0)
        len = std::min(static_cast<std::size_t>(p), sizeof(buf) - 1);

    const int n = std::vsnprintf(buf + len, sizeof(buf) - len, fmt, args);
    if (n > 0)
        len = std::min(len + static_cast<std::size_t>(n), sizeof(buf) - 1);

    if (len == sizeof(buf) - 1) {
        static const char marker[] = "...[truncated]";
        std::memcpy(buf + sizeof(buf) - sizeof(marker), marker,
                    sizeof(marker));
        len = sizeof(buf) - 1; // the '\n' below replaces the NUL
    }
    buf[len++] = '\n';

    std::fwrite(buf, 1, len, stream);
    std::fflush(stream);
}

void
emitPrefixed(FILE *stream, const char *kind, const char *file, int line,
             const char *cond, const char *fmt, va_list args)
{
    char prefix[512];
    if (cond != nullptr)
        std::snprintf(prefix, sizeof(prefix),
                      "%s: (%s:%d) assertion '%s' failed: ", kind, file,
                      line, cond);
    else
        std::snprintf(prefix, sizeof(prefix), "%s: (%s:%d) ", kind, file,
                      line);
    emitLine(stream, prefix, fmt, args);
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emitPrefixed(stderr, "panic", file, line, nullptr, fmt, args);
    va_end(args);
    std::abort();
}

void
assertFailImpl(const char *file, int line, const char *cond,
               const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emitPrefixed(stderr, "panic", file, line, cond, fmt, args);
    va_end(args);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emitPrefixed(stderr, "fatal", file, line, nullptr, fmt, args);
    va_end(args);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emitLine(stderr, "warn: ", fmt, args);
    va_end(args);
}

void
informImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emitLine(stdout, "info: ", fmt, args);
    va_end(args);
}

} // namespace hima
