#include "common/bench_env.h"

#include <thread>

#if __has_include("hima_build_info.h")
#include "hima_build_info.h"
#else
#define HIMA_GIT_SHA "unknown"
#endif

namespace hima {

unsigned
hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

const char *
buildGitSha()
{
    return HIMA_GIT_SHA;
}

void
writeBenchContext(std::FILE *json)
{
    std::fprintf(json, "  \"hardware_threads\": %u,\n", hardwareThreads());
    std::fprintf(json, "  \"git_sha\": \"%s\",\n", buildGitSha());
}

} // namespace hima
