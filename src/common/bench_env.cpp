#include "common/bench_env.h"

#include <thread>

#if __has_include("hima_build_info.h")
#include "hima_build_info.h"
#else
#define HIMA_GIT_SHA "unknown"
#endif

namespace hima {

unsigned
hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

const char *
buildGitSha()
{
    return HIMA_GIT_SHA;
}

void
writeBenchContext(std::FILE *json)
{
    std::fprintf(json, "  \"hardware_threads\": %u,\n", hardwareThreads());
    std::fprintf(json, "  \"git_sha\": \"%s\",\n", buildGitSha());
}

void
writeTelemetrySnapshot(std::FILE *json, const obs::Snapshot &snapshot)
{
    std::fprintf(json, "{");
    bool first = true;
    for (const obs::SnapshotEntry &e : snapshot.entries) {
        std::fprintf(json, "%s\"%s\": ", first ? "" : ", ",
                     e.name.c_str());
        switch (e.kind) {
        case obs::MetricKind::Counter:
            std::fprintf(json, "%llu",
                         static_cast<unsigned long long>(e.counter));
            break;
        case obs::MetricKind::Gauge:
            std::fprintf(json, "%lld", static_cast<long long>(e.gauge));
            break;
        case obs::MetricKind::Histogram:
            std::fprintf(
                json,
                "{\"count\": %llu, \"mean\": %.1f, \"p50\": %llu, "
                "\"p95\": %llu, \"p99\": %llu, \"max\": %llu}",
                static_cast<unsigned long long>(e.hist.count),
                e.hist.mean(),
                static_cast<unsigned long long>(e.hist.percentile(0.50)),
                static_cast<unsigned long long>(e.hist.percentile(0.95)),
                static_cast<unsigned long long>(e.hist.percentile(0.99)),
                static_cast<unsigned long long>(e.hist.max));
            break;
        }
        first = false;
    }
    std::fprintf(json, "}");
}

} // namespace hima
