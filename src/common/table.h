/**
 * @file
 * ASCII table/report printer used by the benchmark harness to render the
 * paper's tables and figure series as aligned text.
 */

#ifndef HIMA_COMMON_TABLE_H
#define HIMA_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace hima {

/**
 * An aligned ASCII table. Columns are sized to their widest cell; numeric
 * formatting is the caller's job (use the fmt* helpers below).
 */
class Table
{
  public:
    /** Construct with a column header row. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal rule before the next row. */
    void addRule();

    /** Render to the stream with single-space-padded ASCII borders. */
    void print(std::ostream &os) const;

    /** Render to a string. */
    std::string toString() const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_; // empty row == rule
};

/** Format a double with the given precision. */
std::string fmtReal(double v, int precision = 2);

/** Format a double as "N.NNx" speedup/ratio notation. */
std::string fmtRatio(double v, int precision = 2);

/** Format a fraction as a percentage "NN.N%". */
std::string fmtPercent(double fraction, int precision = 1);

/** Format an integer with thousands separators. */
std::string fmtCount(std::uint64_t v);

/** Print a "=== title ===" section banner. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace hima

#endif // HIMA_COMMON_TABLE_H
