/**
 * @file
 * Lightweight statistics package: named scalar counters grouped into a
 * registry, plus a running-moment accumulator. The kernel profiler, the
 * NoC simulator and the area/power model all report through this so that
 * benches can dump a uniform stats block.
 */

#ifndef HIMA_COMMON_STATS_H
#define HIMA_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/tensor.h"

namespace hima {

/** Running mean / variance / extrema accumulator (Welford's algorithm). */
class RunningStat
{
  public:
    /** Record one sample. */
    void add(Real x);

    std::uint64_t count() const { return count_; }
    Real mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance. */
    Real variance() const;

    /** Population standard deviation. */
    Real stddev() const;

    Real min() const { return count_ ? min_ : 0.0; }
    Real max() const { return count_ ? max_ : 0.0; }
    Real total() const { return sum_; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    void reset();

  private:
    std::uint64_t count_ = 0;
    Real mean_ = 0.0;
    Real m2_ = 0.0;
    Real sum_ = 0.0;
    Real min_ = 0.0;
    Real max_ = 0.0;
};

/**
 * A flat registry of named 64-bit counters. Names use '.'-separated paths
 * ("noc.flits_routed", "kernel.linkage.mac_ops") so related counters sort
 * together when dumped.
 */
class StatRegistry
{
  public:
    /** Add delta (default 1) to the named counter, creating it at zero. */
    void inc(const std::string &name, std::uint64_t delta = 1);

    /** Overwrite the named counter. */
    void set(const std::string &name, std::uint64_t value);

    /** Current value, or zero when the counter has never been touched. */
    std::uint64_t get(const std::string &name) const;

    /** True when the counter exists. */
    bool has(const std::string &name) const;

    /** All counters whose name starts with the given prefix, sorted. */
    std::vector<std::pair<std::string, std::uint64_t>>
    withPrefix(const std::string &prefix) const;

    /** Sum of all counters under a prefix. */
    std::uint64_t sumPrefix(const std::string &prefix) const;

    void clear();

    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

/**
 * Nearest-rank percentiles of one sample: for each q, the smallest
 * element such that at least ceil(q * n) elements are <= it. Every q
 * must be in (0, 1]; an empty sample yields zeros. The sample is taken
 * by value and sorted once for all quantiles (callers' latency logs are
 * still needed in arrival order).
 */
std::vector<Real> percentiles(std::vector<Real> sample,
                              const std::vector<Real> &qs);

/** Single-quantile convenience over percentiles(). */
Real percentile(std::vector<Real> sample, Real q);

} // namespace hima

#endif // HIMA_COMMON_STATS_H
