#include "common/random.h"

#include <cmath>
#include <numeric>

namespace hima {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

Real
Rng::uniform()
{
    return static_cast<Real>(next() >> 11) * 0x1.0p-53;
}

Real
Rng::uniform(Real lo, Real hi)
{
    return lo + (hi - lo) * uniform();
}

Index
Rng::uniformInt(Index n)
{
    HIMA_ASSERT(n > 0, "uniformInt(0)");
    return static_cast<Index>(next() % n);
}

Real
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    Real u1 = uniform();
    Real u2 = uniform();
    while (u1 <= 1e-300)
        u1 = uniform();
    const Real mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    hasSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

Real
Rng::normal(Real mean, Real stddev)
{
    return mean + stddev * normal();
}

Vector
Rng::uniformVector(Index n, Real lo, Real hi)
{
    Vector v(n);
    for (Index i = 0; i < n; ++i)
        v[i] = uniform(lo, hi);
    return v;
}

Vector
Rng::normalVector(Index n, Real mean, Real stddev)
{
    Vector v(n);
    for (Index i = 0; i < n; ++i)
        v[i] = normal(mean, stddev);
    return v;
}

Matrix
Rng::normalMatrix(Index rows, Index cols, Real mean, Real stddev)
{
    Matrix m(rows, cols);
    for (Index i = 0; i < m.size(); ++i)
        m.data()[i] = normal(mean, stddev);
    return m;
}

std::vector<Index>
Rng::permutation(Index n)
{
    std::vector<Index> perm(n);
    std::iota(perm.begin(), perm.end(), Index{0});
    for (Index i = n; i > 1; --i) {
        const Index j = uniformInt(i);
        std::swap(perm[i - 1], perm[j]);
    }
    return perm;
}

} // namespace hima
