/**
 * @file
 * Error-reporting and status-message helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated; this is a library bug.
 *            Aborts so a debugger or core dump can capture the state.
 * fatal()  — the *user* asked for something impossible (bad configuration,
 *            inconsistent sizes). Exits with an error code.
 * warn()   — something is off but simulation can continue.
 * inform() — plain status output.
 */

#ifndef HIMA_COMMON_LOGGING_H
#define HIMA_COMMON_LOGGING_H

#include <cstdarg>
#include <string>

namespace hima {

/** Print a formatted message tagged "panic:" and abort(). */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...);

/** Print a formatted message tagged "fatal:" and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...);

/** Print a formatted message tagged "warn:" to stderr. */
void warnImpl(const char *fmt, ...);

/** Print a formatted status message to stdout. */
void informImpl(const char *fmt, ...);

#define HIMA_PANIC(...) ::hima::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define HIMA_FATAL(...) ::hima::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define HIMA_WARN(...) ::hima::warnImpl(__VA_ARGS__)
#define HIMA_INFORM(...) ::hima::informImpl(__VA_ARGS__)

/**
 * Print a failed-assertion report (condition text passed separately so
 * stringized conditions containing '%' cannot corrupt the format) and
 * abort().
 */
[[noreturn]] void assertFailImpl(const char *file, int line,
                                 const char *cond, const char *fmt, ...);

/**
 * Assert a library invariant with a formatted explanation. Active in all
 * build types: the simulator's correctness claims rest on these checks.
 */
#define HIMA_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::hima::assertFailImpl(__FILE__, __LINE__, #cond,               \
                                   __VA_ARGS__);                            \
        }                                                                   \
    } while (0)

} // namespace hima

#endif // HIMA_COMMON_LOGGING_H
