/**
 * @file
 * Dense vector/matrix types and the linear-algebra kernels the DNC memory
 * unit is built from.
 *
 * The types are intentionally simple — row-major, owning, bounds-checked in
 * the accessors — because every cycle- and energy-model in src/arch charges
 * cost from *operation counts*, and a transparent implementation keeps those
 * counts auditable. No external BLAS is used.
 */

#ifndef HIMA_COMMON_TENSOR_H
#define HIMA_COMMON_TENSOR_H

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/logging.h"

namespace hima {

using Real = double;
using Index = std::size_t;

/** A dense, owning, fixed-length vector of Real. */
class Vector
{
  public:
    Vector() = default;

    /** Construct a zero vector of the given length. */
    explicit Vector(Index n) : data_(n, 0.0) {}

    /** Construct a constant vector. */
    Vector(Index n, Real value) : data_(n, value) {}

    Vector(std::initializer_list<Real> init) : data_(init) {}

    Index size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    Real &
    operator[](Index i)
    {
        HIMA_ASSERT(i < data_.size(), "vector index %zu out of range %zu",
                    i, data_.size());
        return data_[i];
    }

    Real
    operator[](Index i) const
    {
        HIMA_ASSERT(i < data_.size(), "vector index %zu out of range %zu",
                    i, data_.size());
        return data_[i];
    }

    Real *data() { return data_.data(); }
    const Real *data() const { return data_.data(); }

    /**
     * Grow or shrink to n elements (new elements zeroed). Shrinking keeps
     * the capacity, so resize-to-previous-size never reallocates — the
     * destination-passing kernels rely on this for their no-steady-state-
     * allocation guarantee.
     */
    void resize(Index n) { data_.resize(n, 0.0); }

    auto begin() { return data_.begin(); }
    auto end() { return data_.end(); }
    auto begin() const { return data_.begin(); }
    auto end() const { return data_.end(); }

    /** Set every element to the given value. */
    void fill(Real value);

    /** Sum of all elements. */
    Real sum() const;

    /** Euclidean (L2) norm. */
    Real norm() const;

    /** Largest element; requires a non-empty vector. */
    Real max() const;

    /** Smallest element; requires a non-empty vector. */
    Real min() const;

    /** Index of the largest element; requires a non-empty vector. */
    Index argmax() const;

    bool operator==(const Vector &other) const = default;

  private:
    std::vector<Real> data_;
};

/** A dense, owning, row-major matrix of Real. */
class Matrix
{
  public:
    Matrix() = default;

    /** Construct a zero matrix of the given shape. */
    Matrix(Index rows, Index cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
    {}

    /** Construct a constant matrix. */
    Matrix(Index rows, Index cols, Real value)
        : rows_(rows), cols_(cols), data_(rows * cols, value)
    {}

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Index size() const { return data_.size(); }

    Real &
    operator()(Index r, Index c)
    {
        HIMA_ASSERT(r < rows_ && c < cols_,
                    "matrix index (%zu,%zu) out of range (%zu,%zu)",
                    r, c, rows_, cols_);
        return data_[r * cols_ + c];
    }

    Real
    operator()(Index r, Index c) const
    {
        HIMA_ASSERT(r < rows_ && c < cols_,
                    "matrix index (%zu,%zu) out of range (%zu,%zu)",
                    r, c, rows_, cols_);
        return data_[r * cols_ + c];
    }

    Real *data() { return data_.data(); }
    const Real *data() const { return data_.data(); }

    /** Pointer to the first element of row r (row-major contiguous). */
    Real *
    rowPtr(Index r)
    {
        HIMA_ASSERT(r < rows_, "row %zu out of range %zu", r, rows_);
        return data_.data() + r * cols_;
    }

    const Real *
    rowPtr(Index r) const
    {
        HIMA_ASSERT(r < rows_, "row %zu out of range %zu", r, rows_);
        return data_.data() + r * cols_;
    }

    /** Reshape to rows x cols (new elements zeroed; capacity retained). */
    void
    resize(Index rows, Index cols)
    {
        rows_ = rows;
        cols_ = cols;
        data_.resize(rows * cols, 0.0);
    }

    /** Set every element to the given value. */
    void fill(Real value);

    /** Copy row r out as a Vector. */
    Vector row(Index r) const;

    /** Overwrite row r from a Vector of matching length. */
    void setRow(Index r, const Vector &v);

    bool operator==(const Matrix &other) const = default;

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Real> data_;
};

// ---------------------------------------------------------------------
// Destination-passing kernels
//
// The hot path of the simulator (MemoryUnit::step and the controller)
// runs entirely on these: the caller owns the output buffer, so a
// steady-state timestep performs zero heap allocations. Every `*Into`
// kernel resizes `out` to the result shape (a no-op when already sized)
// and overwrites it. Element-wise kernels allow `out` to alias an input;
// the mat-vec kernels require the output to be distinct from `x`.
// The value-returning API below is a thin wrapper over these.
// ---------------------------------------------------------------------

/** out = a + b (element-wise; out may alias a or b). */
void addInto(const Vector &a, const Vector &b, Vector &out);
/** out = a - b (element-wise; out may alias a or b). */
void subInto(const Vector &a, const Vector &b, Vector &out);
/** out = a .* b (element-wise; out may alias a or b). */
void mulInto(const Vector &a, const Vector &b, Vector &out);
/** a += b. */
void addInPlace(Vector &a, const Vector &b);
/** a *= s. */
void scaleInPlace(Vector &a, Real s);
/** y += alpha * x (BLAS axpy). */
void axpy(Real alpha, const Vector &x, Vector &y);
/** y = M x; y must not alias x. */
void matVecInto(const Matrix &m, const Vector &x, Vector &y);
/** y += M x; y must not alias x. */
void matVecAccumulate(const Matrix &m, const Vector &x, Vector &y);
/** y = M^T x; y must not alias x. */
void matTVecInto(const Matrix &m, const Vector &x, Vector &y);
/**
 * y = M^T x, skipping rows whose `rowGate` entry is at or below
 * `threshold`; returns the number of rows skipped. With `rowGate` the
 * cached L2 row norms and a threshold of 0 this is bit-identical to
 * matTVecInto for nonnegative x: a gated-out row is all-zero, every one
 * of its accumulator terms is +0.0, and adding +0.0 never changes an
 * accumulator's bits. Visited rows accumulate in matTVecInto's order.
 */
Index matTVecSparseInto(const Matrix &m, const Vector &x,
                        const Vector &rowGate, Real threshold, Vector &y);
/** m += s * a b^T; m must already have shape rows(a) x rows(b). */
void outerAccumulate(const Vector &a, const Vector &b, Real s, Matrix &m);
/** out = A B; out must not alias A or B. */
void matMulInto(const Matrix &a, const Matrix &b, Matrix &out);

// ---------------------------------------------------------------------
// Batched (struct-of-arrays) kernels
//
// The serving engine (src/serve) runs B independent DNC lanes with
// lane-interleaved activations: element k of lane b lives at
// buf[k * laneStride + b], so one sweep over k touches all lanes per
// row block and a shared weight row is streamed once for the whole
// batch. Per-lane numerics are bit-identical to the single-lane kernels
// above: every lane keeps its own k-ascending accumulator chain, exactly
// as matVecInto() does — batching changes operand reuse, never the math.
//
// Every batched sweep takes the lane count in two parts: `laneStride`
// (the buffer's column capacity — column b of row k is at
// buf[k * laneStride + b]) and `activeLanes` (how many leading columns
// actually hold live lanes). The serving engine keeps its active lanes
// compacted into the leading columns, so a partially occupied batch
// sweeps only `activeLanes` columns — no flop is spent on padding. The
// (m, x, lanes, y) convenience forms below are the fully-occupied case
// (activeLanes == laneStride).
//
// laneBroadcastAdd/laneAxpy have no engine callers yet (BatchedDnc
// fuses its bias adds); they complete the kernel API for batched heads
// with biases and are pinned by the same per-lane unit tests.
// ---------------------------------------------------------------------

/**
 * Lanes per stack-resident accumulator chunk in every batched sweep —
 * shared by the kernels here and the row-blocked sweeps in src/serve so
 * the chunk boundary the bit-exactness tests cross is one constant.
 */
inline constexpr Index kBatchLaneChunk = 64;

/**
 * Batched y = M x over lane-interleaved operands:
 *   y[r * laneStride + b] = sum_c M(r, c) * x[c * laneStride + b]
 * for every active lane b in [0, activeLanes). x must hold
 * cols(M) * laneStride values; y is resized to rows(M) * laneStride and
 * the active columns overwritten (inactive columns are untouched); y
 * must not alias x. Each lane's accumulation runs c-ascending,
 * bit-identical to matVecInto per lane.
 */
void batchedMatVecInto(const Matrix &m, const Vector &x, Index laneStride,
                       Index activeLanes, Vector &y);

/** Fully-occupied convenience form: activeLanes == laneStride. */
void batchedMatVecInto(const Matrix &m, const Vector &x, Index lanes,
                       Vector &y);

/**
 * Batched y += M x over the active columns (lane-interleaved, shapes as
 * batchedMatVecInto, y pre-sized to rows(M) * laneStride). Matches
 * matVecAccumulate per lane bit-for-bit: the row sum is completed in a
 * private accumulator before the single += into y.
 */
void batchedMatVecAccumulate(const Matrix &m, const Vector &x,
                             Index laneStride, Index activeLanes, Vector &y);

/** Fully-occupied convenience form: activeLanes == laneStride. */
void batchedMatVecAccumulate(const Matrix &m, const Vector &x, Index lanes,
                             Vector &y);

/**
 * Broadcast-add a per-row bias across the active lanes:
 *   y[r * laneStride + b] += bias[r], b in [0, activeLanes).
 * Equivalent to addInPlace(y_b, bias) on every active lane.
 */
void laneBroadcastAdd(const Vector &bias, Index laneStride,
                      Index activeLanes, Vector &y);

/** Fully-occupied convenience form: activeLanes == laneStride. */
void laneBroadcastAdd(const Vector &bias, Index lanes, Vector &y);

/**
 * Gather one lane out of a lane-interleaved buffer:
 *   out[k] = soa[k * lanes + lane], k in [0, count).
 * out is resized to count.
 */
void laneGatherInto(const Vector &soa, Index lanes, Index lane, Index count,
                    Vector &out);

/**
 * Scatter a contiguous per-lane vector into a lane-interleaved buffer:
 *   soa[(rowOffset + k) * lanes + lane] = v[k].
 * soa must already hold (rowOffset + v.size()) * lanes values; rowOffset
 * places the vector at a row offset inside a larger SoA tile (e.g. read
 * head h at offset h * W of the concatenated-reads buffer).
 */
void laneScatterInto(const Vector &v, Index lanes, Index lane, Vector &soa,
                     Index rowOffset = 0);

/**
 * Lane-strided axpy: y_lane += alpha * x over a lane-interleaved y:
 *   y[k * lanes + lane] += alpha * x[k].
 * Bit-identical to axpy(alpha, x, y_lane) on the gathered lane.
 */
void laneAxpy(Real alpha, const Vector &x, Index lanes, Index lane,
              Vector &y);

/** Inner product of row r of m with x, without materializing the row. */
Real dotRow(const Matrix &m, Index r, const Vector &x);

/** Euclidean norm of row r of m, without materializing the row. */
Real rowNorm(const Matrix &m, Index r);

/**
 * Preallocated scratch vectors for the allocation-free memory-unit hot
 * path. One Workspace per MemoryUnit, sized once from the DncConfig
 * shapes (memoryRows x memoryWidth); every buffer is overwritten each
 * timestep, so none carries state.
 */
struct Workspace
{
    Workspace() = default;
    Workspace(Index rows, Index width, Index heads = 1)
    {
        resize(rows, width, heads);
    }

    /** (Re)size every scratch buffer for an N x W memory with R heads. */
    void
    resize(Index rows, Index width, Index heads = 1)
    {
        scores.resize(rows);
        contentW.resize(rows);
        retention.resize(rows);
        allocW.resize(rows);
        forwardW.resize(heads);
        backwardW.resize(heads);
        for (Index h = 0; h < heads; ++h) {
            forwardW[h].resize(rows);
            backwardW[h].resize(rows);
        }
        widthScratch.resize(width);
    }

    Vector scores;       ///< similarity scores (length N)
    Vector contentW;     ///< content weighting (length N)
    Vector retention;    ///< retention vector psi (length N)
    Vector allocW;       ///< allocation weighting (length N)
    std::vector<Vector> forwardW;  ///< per-head forward weightings (R x N)
    std::vector<Vector> backwardW; ///< per-head backward weightings (R x N)
    Vector widthScratch; ///< word-width scratch (length W)
};

// ---------------------------------------------------------------------
// Vector kernels
// ---------------------------------------------------------------------

/** Element-wise a + b. */
Vector add(const Vector &a, const Vector &b);
/** Element-wise a - b. */
Vector sub(const Vector &a, const Vector &b);
/** Element-wise (Hadamard) a * b. */
Vector mul(const Vector &a, const Vector &b);
/** Scale every element of a by s. */
Vector scale(const Vector &a, Real s);
/** Inner (dot) product. */
Real dot(const Vector &a, const Vector &b);

/**
 * Cosine similarity between a and b with an epsilon guard against
 * zero-norm operands, matching the DNC paper's content addressing.
 */
Real cosineSimilarity(const Vector &a, const Vector &b, Real eps = 1e-6);

// ---------------------------------------------------------------------
// Matrix kernels
// ---------------------------------------------------------------------

/** y = M x  (rows(M) must equal x for transpose=false path sizes). */
Vector matVec(const Matrix &m, const Vector &x);

/** y = M^T x. */
Vector matTVec(const Matrix &m, const Vector &x);

/** Outer product a b^T as a rows(a) x rows(b) matrix. */
Matrix outer(const Vector &a, const Vector &b);

/** Explicit transpose (the hardware transpose primitive). */
Matrix transpose(const Matrix &m);

/** Element-wise a + b. */
Matrix add(const Matrix &a, const Matrix &b);
/** Element-wise a - b. */
Matrix sub(const Matrix &a, const Matrix &b);
/** Element-wise (Hadamard) a * b. */
Matrix mul(const Matrix &a, const Matrix &b);
/** Scale every element. */
Matrix scale(const Matrix &a, Real s);

/** Matrix-matrix product. */
Matrix matMul(const Matrix &a, const Matrix &b);

} // namespace hima

#endif // HIMA_COMMON_TENSOR_H
