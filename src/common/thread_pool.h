/**
 * @file
 * A small persistent worker pool for the embarrassingly-parallel parts
 * of the simulator (the independent DNC-D tiles, Sec. 5.1).
 *
 * Design constraints, in order:
 *   1. Determinism — parallelFor() partitions an index space; every
 *      index runs exactly once and the call returns only after all of
 *      them finished, so results are independent of scheduling.
 *   2. No per-call thread spawn — workers persist across calls, because
 *      a DNC-D timestep at small shard sizes is far cheaper than a
 *      pthread_create.
 *   3. The calling thread participates — a pool constructed with
 *      `threads` total lanes spawns only threads-1 workers.
 *
 * parallelFor() is not reentrant and the pool must be driven from one
 * thread at a time; that is exactly the DncD use case.
 */

#ifndef HIMA_COMMON_THREAD_POOL_H
#define HIMA_COMMON_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/tensor.h"

namespace hima {

/** Persistent fork-join pool over an index space. */
class ThreadPool
{
  public:
    /**
     * @param threads total parallel lanes (>= 1); the pool spawns
     *                threads-1 workers and the caller is the last lane
     */
    explicit ThreadPool(Index threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Run fn(0) .. fn(count-1), work-stealing off a shared atomic
     * counter; returns after every call completed. If any call throws,
     * the first exception (in completion order) is captured and rethrown
     * on the calling thread after the join barrier — the remaining
     * indices still execute, so the index-space guarantee holds and the
     * pool stays usable for subsequent jobs.
     */
    void parallelFor(Index count, const std::function<void(Index)> &fn);

    /** Total lanes (workers + caller). */
    Index threads() const { return workers_.size() + 1; }

  private:
    void workerLoop();
    void drain(const std::function<void(Index)> &fn);

    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable startCv_;
    std::condition_variable doneCv_;
    const std::function<void(Index)> *job_ = nullptr;
    Index jobCount_ = 0;
    std::uint64_t generation_ = 0;
    std::exception_ptr firstError_; ///< first throw from the current job
    std::atomic<Index> nextIndex_{0};
    std::atomic<Index> remaining_{0};
    Index drainers_ = 0; ///< workers inside the previous job's index space
    bool stop_ = false;
};

} // namespace hima

#endif // HIMA_COMMON_THREAD_POOL_H
