#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace hima {

void
RunningStat::add(Real x)
{
    ++count_;
    sum_ += x;
    if (count_ == 1) {
        min_ = max_ = x;
        mean_ = x;
        m2_ = 0.0;
        return;
    }
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const Real delta = x - mean_;
    mean_ += delta / static_cast<Real>(count_);
    m2_ += delta * (x - mean_);
}

Real
RunningStat::variance() const
{
    // A single sample has no spread, and m2_ can carry a tiny negative
    // rounding residue there; guard rather than divide.
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<Real>(count_);
}

Real
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const Real na = static_cast<Real>(count_);
    const Real nb = static_cast<Real>(other.count_);
    const Real delta = other.mean_ - mean_;
    const Real total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStat::reset()
{
    *this = RunningStat{};
}

void
StatRegistry::inc(const std::string &name, std::uint64_t delta)
{
    counters_[name] += delta;
}

void
StatRegistry::set(const std::string &name, std::uint64_t value)
{
    counters_[name] = value;
}

std::uint64_t
StatRegistry::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

bool
StatRegistry::has(const std::string &name) const
{
    return counters_.count(name) > 0;
}

std::vector<std::pair<std::string, std::uint64_t>>
StatRegistry::withPrefix(const std::string &prefix) const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (const auto &[name, value] : counters_) {
        if (name.rfind(prefix, 0) == 0)
            out.emplace_back(name, value);
    }
    return out;
}

std::uint64_t
StatRegistry::sumPrefix(const std::string &prefix) const
{
    std::uint64_t total = 0;
    for (const auto &[name, value] : counters_) {
        if (name.rfind(prefix, 0) == 0)
            total += value;
    }
    return total;
}

void
StatRegistry::clear()
{
    counters_.clear();
}

std::vector<Real>
percentiles(std::vector<Real> sample, const std::vector<Real> &qs)
{
    std::vector<Real> out;
    out.reserve(qs.size());
    std::sort(sample.begin(), sample.end());
    for (Real q : qs) {
        HIMA_ASSERT(q > 0.0 && q <= 1.0, "percentile: q %f outside (0, 1]",
                    q);
        if (sample.empty()) {
            out.push_back(0.0);
            continue;
        }
        const std::size_t rank = static_cast<std::size_t>(std::max(
            1.0, std::ceil(q * static_cast<Real>(sample.size()))));
        out.push_back(sample[rank - 1]);
    }
    return out;
}

Real
percentile(std::vector<Real> sample, Real q)
{
    return percentiles(std::move(sample), {q})[0];
}

} // namespace hima
