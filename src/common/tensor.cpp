#include "common/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hima {

void
Vector::fill(Real value)
{
    std::fill(data_.begin(), data_.end(), value);
}

Real
Vector::sum() const
{
    return std::accumulate(data_.begin(), data_.end(), 0.0);
}

Real
Vector::norm() const
{
    Real acc = 0.0;
    for (Real v : data_)
        acc += v * v;
    return std::sqrt(acc);
}

Real
Vector::max() const
{
    HIMA_ASSERT(!data_.empty(), "max() of empty vector");
    return *std::max_element(data_.begin(), data_.end());
}

Real
Vector::min() const
{
    HIMA_ASSERT(!data_.empty(), "min() of empty vector");
    return *std::min_element(data_.begin(), data_.end());
}

Index
Vector::argmax() const
{
    HIMA_ASSERT(!data_.empty(), "argmax() of empty vector");
    return static_cast<Index>(
        std::max_element(data_.begin(), data_.end()) - data_.begin());
}

void
Matrix::fill(Real value)
{
    std::fill(data_.begin(), data_.end(), value);
}

Vector
Matrix::row(Index r) const
{
    HIMA_ASSERT(r < rows_, "row %zu out of range %zu", r, rows_);
    Vector v(cols_);
    for (Index c = 0; c < cols_; ++c)
        v[c] = data_[r * cols_ + c];
    return v;
}

void
Matrix::setRow(Index r, const Vector &v)
{
    HIMA_ASSERT(r < rows_, "row %zu out of range %zu", r, rows_);
    HIMA_ASSERT(v.size() == cols_, "row length %zu != cols %zu",
                v.size(), cols_);
    for (Index c = 0; c < cols_; ++c)
        data_[r * cols_ + c] = v[c];
}

namespace {

void
checkSameSize(const Vector &a, const Vector &b, const char *op)
{
    HIMA_ASSERT(a.size() == b.size(), "%s: size mismatch %zu vs %zu",
                op, a.size(), b.size());
}

void
checkSameShape(const Matrix &a, const Matrix &b, const char *op)
{
    HIMA_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                "%s: shape mismatch (%zu,%zu) vs (%zu,%zu)",
                op, a.rows(), a.cols(), b.rows(), b.cols());
}

} // namespace

void
addInto(const Vector &a, const Vector &b, Vector &out)
{
    checkSameSize(a, b, "addInto");
    const Index n = a.size();
    out.resize(n);
    const Real *pa = a.data();
    const Real *pb = b.data();
    Real *po = out.data();
    for (Index i = 0; i < n; ++i)
        po[i] = pa[i] + pb[i];
}

void
subInto(const Vector &a, const Vector &b, Vector &out)
{
    checkSameSize(a, b, "subInto");
    const Index n = a.size();
    out.resize(n);
    const Real *pa = a.data();
    const Real *pb = b.data();
    Real *po = out.data();
    for (Index i = 0; i < n; ++i)
        po[i] = pa[i] - pb[i];
}

void
mulInto(const Vector &a, const Vector &b, Vector &out)
{
    checkSameSize(a, b, "mulInto");
    const Index n = a.size();
    out.resize(n);
    const Real *pa = a.data();
    const Real *pb = b.data();
    Real *po = out.data();
    for (Index i = 0; i < n; ++i)
        po[i] = pa[i] * pb[i];
}

void
addInPlace(Vector &a, const Vector &b)
{
    checkSameSize(a, b, "addInPlace");
    Real *pa = a.data();
    const Real *pb = b.data();
    for (Index i = 0, n = a.size(); i < n; ++i)
        pa[i] += pb[i];
}

void
scaleInPlace(Vector &a, Real s)
{
    Real *pa = a.data();
    for (Index i = 0, n = a.size(); i < n; ++i)
        pa[i] *= s;
}

void
axpy(Real alpha, const Vector &x, Vector &y)
{
    checkSameSize(x, y, "axpy");
    const Real *px = x.data();
    Real *py = y.data();
    for (Index i = 0, n = x.size(); i < n; ++i)
        py[i] += alpha * px[i];
}

void
matVecInto(const Matrix &m, const Vector &x, Vector &y)
{
    HIMA_ASSERT(m.cols() == x.size(), "matVecInto: cols %zu != x %zu",
                m.cols(), x.size());
    const Index rows = m.rows();
    const Index cols = m.cols();
    y.resize(rows);
    const Real *pm = m.data();
    const Real *px = x.data();
    Real *py = y.data();
    for (Index r = 0; r < rows; ++r) {
        const Real *row = pm + r * cols;
        Real acc = 0.0;
        for (Index c = 0; c < cols; ++c)
            acc += row[c] * px[c];
        py[r] = acc;
    }
}

void
matVecAccumulate(const Matrix &m, const Vector &x, Vector &y)
{
    HIMA_ASSERT(m.cols() == x.size(), "matVecAccumulate: cols %zu != x %zu",
                m.cols(), x.size());
    HIMA_ASSERT(m.rows() == y.size(), "matVecAccumulate: rows %zu != y %zu",
                m.rows(), y.size());
    const Index rows = m.rows();
    const Index cols = m.cols();
    const Real *pm = m.data();
    const Real *px = x.data();
    Real *py = y.data();
    for (Index r = 0; r < rows; ++r) {
        const Real *row = pm + r * cols;
        Real acc = 0.0;
        for (Index c = 0; c < cols; ++c)
            acc += row[c] * px[c];
        py[r] += acc;
    }
}

void
matTVecInto(const Matrix &m, const Vector &x, Vector &y)
{
    HIMA_ASSERT(m.rows() == x.size(), "matTVecInto: rows %zu != x %zu",
                m.rows(), x.size());
    const Index rows = m.rows();
    const Index cols = m.cols();
    y.resize(cols);
    const Real *pm = m.data();
    const Real *px = x.data();
    Real *py = y.data();
    for (Index c = 0; c < cols; ++c)
        py[c] = 0.0;
    for (Index r = 0; r < rows; ++r) {
        const Real xv = px[r];
        const Real *row = pm + r * cols;
        for (Index c = 0; c < cols; ++c)
            py[c] += row[c] * xv;
    }
}

Index
matTVecSparseInto(const Matrix &m, const Vector &x, const Vector &rowGate,
                  Real threshold, Vector &y)
{
    HIMA_ASSERT(m.rows() == x.size(), "matTVecSparseInto: rows %zu != x %zu",
                m.rows(), x.size());
    HIMA_ASSERT(rowGate.size() == m.rows(),
                "matTVecSparseInto: gate %zu != rows %zu", rowGate.size(),
                m.rows());
    const Index rows = m.rows();
    const Index cols = m.cols();
    y.resize(cols);
    const Real *pm = m.data();
    const Real *px = x.data();
    const Real *pg = rowGate.data();
    Real *py = y.data();
    for (Index c = 0; c < cols; ++c)
        py[c] = 0.0;
    Index skipped = 0;
    for (Index r = 0; r < rows; ++r) {
        if (pg[r] <= threshold) {
            ++skipped;
            continue;
        }
        const Real xv = px[r];
        const Real *row = pm + r * cols;
        for (Index c = 0; c < cols; ++c)
            py[c] += row[c] * xv;
    }
    return skipped;
}

void
outerAccumulate(const Vector &a, const Vector &b, Real s, Matrix &m)
{
    HIMA_ASSERT(m.rows() == a.size() && m.cols() == b.size(),
                "outerAccumulate: shape (%zu,%zu) != (%zu,%zu)",
                m.rows(), m.cols(), a.size(), b.size());
    const Index rows = a.size();
    const Index cols = b.size();
    const Real *pa = a.data();
    const Real *pb = b.data();
    Real *pm = m.data();
    for (Index r = 0; r < rows; ++r) {
        const Real av = s * pa[r];
        if (av == 0.0)
            continue;
        Real *row = pm + r * cols;
        for (Index c = 0; c < cols; ++c)
            row[c] += av * pb[c];
    }
}

void
matMulInto(const Matrix &a, const Matrix &b, Matrix &out)
{
    HIMA_ASSERT(a.cols() == b.rows(), "matMulInto: inner dims %zu vs %zu",
                a.cols(), b.rows());
    out.resize(a.rows(), b.cols());
    out.fill(0.0);
    const Index rows = a.rows();
    const Index inner = a.cols();
    const Index cols = b.cols();
    const Real *pa = a.data();
    const Real *pb = b.data();
    Real *po = out.data();
    for (Index r = 0; r < rows; ++r) {
        Real *orow = po + r * cols;
        const Real *arow = pa + r * inner;
        for (Index k = 0; k < inner; ++k) {
            const Real av = arow[k];
            if (av == 0.0)
                continue;
            const Real *brow = pb + k * cols;
            for (Index c = 0; c < cols; ++c)
                orow[c] += av * brow[c];
        }
    }
}

namespace {

/**
 * Shared body of the batched mat-vec kernels. Lanes are processed in
 * stack-resident chunks so every lane owns a private c-ascending
 * accumulator (the bit-exactness requirement) without any heap scratch;
 * the weight row is streamed once per chunk of up to kLaneChunk lanes.
 * Only the `active` leading columns of the stride-`stride` SoA tile are
 * swept — a partially occupied batch never pays flops for padding.
 */
template <bool Accumulate>
void
batchedMatVecBody(const Matrix &m, const Vector &x, Index stride,
                  Index active, Vector &y)
{
    HIMA_ASSERT(stride >= 1, "batchedMatVec: zero lane stride");
    HIMA_ASSERT(active >= 1 && active <= stride,
                "batchedMatVec: active lanes %zu outside [1, %zu]",
                active, stride);
    HIMA_ASSERT(m.cols() * stride == x.size(),
                "batchedMatVec: cols %zu * stride %zu != x %zu",
                m.cols(), stride, x.size());
    const Index rows = m.rows();
    const Index cols = m.cols();
    if (Accumulate)
        HIMA_ASSERT(y.size() == rows * stride,
                    "batchedMatVecAccumulate: y %zu != rows %zu * stride %zu",
                    y.size(), rows, stride);
    else
        y.resize(rows * stride);

    const Real *pm = m.data();
    const Real *px = x.data();
    Real *py = y.data();

    // Single-lane degenerate case (contiguous operands): keep the
    // accumulator in a register (the chunk array below defeats register
    // allocation at nb == 1 and costs ~2x on the dot-product chain).
    // Same c-ascending chain. Only valid at stride 1 — a lone active
    // lane inside a wider tile still needs the strided walk below.
    if (stride == 1) {
        for (Index r = 0; r < rows; ++r) {
            const Real *row = pm + r * cols;
            Real acc = 0.0;
            for (Index c = 0; c < cols; ++c)
                acc += row[c] * px[c];
            if (Accumulate)
                py[r] += acc;
            else
                py[r] = acc;
        }
        return;
    }

    Real acc[kBatchLaneChunk];
    for (Index b0 = 0; b0 < active; b0 += kBatchLaneChunk) {
        const Index nb = std::min(kBatchLaneChunk, active - b0);
        for (Index r = 0; r < rows; ++r) {
            const Real *row = pm + r * cols;
            for (Index b = 0; b < nb; ++b)
                acc[b] = 0.0;
            for (Index c = 0; c < cols; ++c) {
                const Real w = row[c];
                const Real *xl = px + c * stride + b0;
                for (Index b = 0; b < nb; ++b)
                    acc[b] += w * xl[b];
            }
            Real *yl = py + r * stride + b0;
            for (Index b = 0; b < nb; ++b) {
                if (Accumulate)
                    yl[b] += acc[b];
                else
                    yl[b] = acc[b];
            }
        }
    }
}

} // namespace

void
batchedMatVecInto(const Matrix &m, const Vector &x, Index laneStride,
                  Index activeLanes, Vector &y)
{
    batchedMatVecBody<false>(m, x, laneStride, activeLanes, y);
}

void
batchedMatVecInto(const Matrix &m, const Vector &x, Index lanes, Vector &y)
{
    batchedMatVecBody<false>(m, x, lanes, lanes, y);
}

void
batchedMatVecAccumulate(const Matrix &m, const Vector &x, Index laneStride,
                        Index activeLanes, Vector &y)
{
    batchedMatVecBody<true>(m, x, laneStride, activeLanes, y);
}

void
batchedMatVecAccumulate(const Matrix &m, const Vector &x, Index lanes,
                        Vector &y)
{
    batchedMatVecBody<true>(m, x, lanes, lanes, y);
}

void
laneBroadcastAdd(const Vector &bias, Index laneStride, Index activeLanes,
                 Vector &y)
{
    HIMA_ASSERT(bias.size() * laneStride == y.size(),
                "laneBroadcastAdd: bias %zu * stride %zu != y %zu",
                bias.size(), laneStride, y.size());
    HIMA_ASSERT(activeLanes >= 1 && activeLanes <= laneStride,
                "laneBroadcastAdd: active lanes %zu outside [1, %zu]",
                activeLanes, laneStride);
    const Real *pb = bias.data();
    Real *py = y.data();
    for (Index r = 0, n = bias.size(); r < n; ++r) {
        const Real bv = pb[r];
        Real *yl = py + r * laneStride;
        for (Index b = 0; b < activeLanes; ++b)
            yl[b] += bv;
    }
}

void
laneBroadcastAdd(const Vector &bias, Index lanes, Vector &y)
{
    laneBroadcastAdd(bias, lanes, lanes, y);
}

void
laneGatherInto(const Vector &soa, Index lanes, Index lane, Index count,
               Vector &out)
{
    HIMA_ASSERT(lane < lanes, "laneGatherInto: lane %zu >= %zu", lane, lanes);
    HIMA_ASSERT(count * lanes <= soa.size(),
                "laneGatherInto: count %zu * lanes %zu > soa %zu",
                count, lanes, soa.size());
    out.resize(count);
    const Real *ps = soa.data() + lane;
    Real *po = out.data();
    for (Index k = 0; k < count; ++k)
        po[k] = ps[k * lanes];
}

void
laneScatterInto(const Vector &v, Index lanes, Index lane, Vector &soa,
                Index rowOffset)
{
    HIMA_ASSERT(lane < lanes, "laneScatterInto: lane %zu >= %zu", lane, lanes);
    HIMA_ASSERT((rowOffset + v.size()) * lanes <= soa.size(),
                "laneScatterInto: (%zu + %zu) * lanes %zu > soa %zu",
                rowOffset, v.size(), lanes, soa.size());
    const Real *pv = v.data();
    Real *ps = soa.data() + rowOffset * lanes + lane;
    for (Index k = 0, n = v.size(); k < n; ++k)
        ps[k * lanes] = pv[k];
}

void
laneAxpy(Real alpha, const Vector &x, Index lanes, Index lane, Vector &y)
{
    HIMA_ASSERT(lane < lanes, "laneAxpy: lane %zu >= %zu", lane, lanes);
    HIMA_ASSERT(x.size() * lanes <= y.size(),
                "laneAxpy: x %zu * lanes %zu > y %zu",
                x.size(), lanes, y.size());
    const Real *px = x.data();
    Real *py = y.data() + lane;
    for (Index k = 0, n = x.size(); k < n; ++k)
        py[k * lanes] += alpha * px[k];
}

Real
dotRow(const Matrix &m, Index r, const Vector &x)
{
    HIMA_ASSERT(m.cols() == x.size(), "dotRow: cols %zu != x %zu",
                m.cols(), x.size());
    const Real *row = m.rowPtr(r);
    const Real *px = x.data();
    Real acc = 0.0;
    for (Index c = 0, w = m.cols(); c < w; ++c)
        acc += row[c] * px[c];
    return acc;
}

Real
rowNorm(const Matrix &m, Index r)
{
    const Real *row = m.rowPtr(r);
    Real acc = 0.0;
    for (Index c = 0, w = m.cols(); c < w; ++c)
        acc += row[c] * row[c];
    return std::sqrt(acc);
}

Vector
add(const Vector &a, const Vector &b)
{
    Vector out;
    addInto(a, b, out);
    return out;
}

Vector
sub(const Vector &a, const Vector &b)
{
    Vector out;
    subInto(a, b, out);
    return out;
}

Vector
mul(const Vector &a, const Vector &b)
{
    Vector out;
    mulInto(a, b, out);
    return out;
}

Vector
scale(const Vector &a, Real s)
{
    Vector out = a;
    scaleInPlace(out, s);
    return out;
}

Real
dot(const Vector &a, const Vector &b)
{
    checkSameSize(a, b, "dot");
    const Real *pa = a.data();
    const Real *pb = b.data();
    Real acc = 0.0;
    for (Index i = 0, n = a.size(); i < n; ++i)
        acc += pa[i] * pb[i];
    return acc;
}

Real
cosineSimilarity(const Vector &a, const Vector &b, Real eps)
{
    checkSameSize(a, b, "cosineSimilarity");
    return dot(a, b) / (a.norm() * b.norm() + eps);
}

Vector
matVec(const Matrix &m, const Vector &x)
{
    Vector y;
    matVecInto(m, x, y);
    return y;
}

Vector
matTVec(const Matrix &m, const Vector &x)
{
    Vector y;
    matTVecInto(m, x, y);
    return y;
}

Matrix
outer(const Vector &a, const Vector &b)
{
    Matrix m(a.size(), b.size());
    outerAccumulate(a, b, 1.0, m);
    return m;
}

Matrix
transpose(const Matrix &m)
{
    Matrix t(m.cols(), m.rows());
    for (Index r = 0; r < m.rows(); ++r)
        for (Index c = 0; c < m.cols(); ++c)
            t(c, r) = m(r, c);
    return t;
}

Matrix
add(const Matrix &a, const Matrix &b)
{
    checkSameShape(a, b, "add");
    Matrix out(a.rows(), a.cols());
    for (Index i = 0; i < a.size(); ++i)
        out.data()[i] = a.data()[i] + b.data()[i];
    return out;
}

Matrix
sub(const Matrix &a, const Matrix &b)
{
    checkSameShape(a, b, "sub");
    Matrix out(a.rows(), a.cols());
    for (Index i = 0; i < a.size(); ++i)
        out.data()[i] = a.data()[i] - b.data()[i];
    return out;
}

Matrix
mul(const Matrix &a, const Matrix &b)
{
    checkSameShape(a, b, "mul");
    Matrix out(a.rows(), a.cols());
    for (Index i = 0; i < a.size(); ++i)
        out.data()[i] = a.data()[i] * b.data()[i];
    return out;
}

Matrix
scale(const Matrix &a, Real s)
{
    Matrix out(a.rows(), a.cols());
    for (Index i = 0; i < a.size(); ++i)
        out.data()[i] = a.data()[i] * s;
    return out;
}

Matrix
matMul(const Matrix &a, const Matrix &b)
{
    Matrix out;
    matMulInto(a, b, out);
    return out;
}

} // namespace hima
