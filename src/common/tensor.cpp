#include "common/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hima {

void
Vector::fill(Real value)
{
    std::fill(data_.begin(), data_.end(), value);
}

Real
Vector::sum() const
{
    return std::accumulate(data_.begin(), data_.end(), 0.0);
}

Real
Vector::norm() const
{
    Real acc = 0.0;
    for (Real v : data_)
        acc += v * v;
    return std::sqrt(acc);
}

Real
Vector::max() const
{
    HIMA_ASSERT(!data_.empty(), "max() of empty vector");
    return *std::max_element(data_.begin(), data_.end());
}

Real
Vector::min() const
{
    HIMA_ASSERT(!data_.empty(), "min() of empty vector");
    return *std::min_element(data_.begin(), data_.end());
}

Index
Vector::argmax() const
{
    HIMA_ASSERT(!data_.empty(), "argmax() of empty vector");
    return static_cast<Index>(
        std::max_element(data_.begin(), data_.end()) - data_.begin());
}

void
Matrix::fill(Real value)
{
    std::fill(data_.begin(), data_.end(), value);
}

Vector
Matrix::row(Index r) const
{
    HIMA_ASSERT(r < rows_, "row %zu out of range %zu", r, rows_);
    Vector v(cols_);
    for (Index c = 0; c < cols_; ++c)
        v[c] = data_[r * cols_ + c];
    return v;
}

void
Matrix::setRow(Index r, const Vector &v)
{
    HIMA_ASSERT(r < rows_, "row %zu out of range %zu", r, rows_);
    HIMA_ASSERT(v.size() == cols_, "row length %zu != cols %zu",
                v.size(), cols_);
    for (Index c = 0; c < cols_; ++c)
        data_[r * cols_ + c] = v[c];
}

namespace {

void
checkSameSize(const Vector &a, const Vector &b, const char *op)
{
    HIMA_ASSERT(a.size() == b.size(), "%s: size mismatch %zu vs %zu",
                op, a.size(), b.size());
}

void
checkSameShape(const Matrix &a, const Matrix &b, const char *op)
{
    HIMA_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                "%s: shape mismatch (%zu,%zu) vs (%zu,%zu)",
                op, a.rows(), a.cols(), b.rows(), b.cols());
}

} // namespace

Vector
add(const Vector &a, const Vector &b)
{
    checkSameSize(a, b, "add");
    Vector out(a.size());
    for (Index i = 0; i < a.size(); ++i)
        out[i] = a[i] + b[i];
    return out;
}

Vector
sub(const Vector &a, const Vector &b)
{
    checkSameSize(a, b, "sub");
    Vector out(a.size());
    for (Index i = 0; i < a.size(); ++i)
        out[i] = a[i] - b[i];
    return out;
}

Vector
mul(const Vector &a, const Vector &b)
{
    checkSameSize(a, b, "mul");
    Vector out(a.size());
    for (Index i = 0; i < a.size(); ++i)
        out[i] = a[i] * b[i];
    return out;
}

Vector
scale(const Vector &a, Real s)
{
    Vector out(a.size());
    for (Index i = 0; i < a.size(); ++i)
        out[i] = a[i] * s;
    return out;
}

Real
dot(const Vector &a, const Vector &b)
{
    checkSameSize(a, b, "dot");
    Real acc = 0.0;
    for (Index i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

Real
cosineSimilarity(const Vector &a, const Vector &b, Real eps)
{
    checkSameSize(a, b, "cosineSimilarity");
    return dot(a, b) / (a.norm() * b.norm() + eps);
}

Vector
matVec(const Matrix &m, const Vector &x)
{
    HIMA_ASSERT(m.cols() == x.size(), "matVec: cols %zu != x %zu",
                m.cols(), x.size());
    Vector y(m.rows());
    for (Index r = 0; r < m.rows(); ++r) {
        Real acc = 0.0;
        for (Index c = 0; c < m.cols(); ++c)
            acc += m(r, c) * x[c];
        y[r] = acc;
    }
    return y;
}

Vector
matTVec(const Matrix &m, const Vector &x)
{
    HIMA_ASSERT(m.rows() == x.size(), "matTVec: rows %zu != x %zu",
                m.rows(), x.size());
    Vector y(m.cols());
    for (Index r = 0; r < m.rows(); ++r) {
        const Real xv = x[r];
        for (Index c = 0; c < m.cols(); ++c)
            y[c] += m(r, c) * xv;
    }
    return y;
}

Matrix
outer(const Vector &a, const Vector &b)
{
    Matrix m(a.size(), b.size());
    for (Index r = 0; r < a.size(); ++r)
        for (Index c = 0; c < b.size(); ++c)
            m(r, c) = a[r] * b[c];
    return m;
}

Matrix
transpose(const Matrix &m)
{
    Matrix t(m.cols(), m.rows());
    for (Index r = 0; r < m.rows(); ++r)
        for (Index c = 0; c < m.cols(); ++c)
            t(c, r) = m(r, c);
    return t;
}

Matrix
add(const Matrix &a, const Matrix &b)
{
    checkSameShape(a, b, "add");
    Matrix out(a.rows(), a.cols());
    for (Index i = 0; i < a.size(); ++i)
        out.data()[i] = a.data()[i] + b.data()[i];
    return out;
}

Matrix
sub(const Matrix &a, const Matrix &b)
{
    checkSameShape(a, b, "sub");
    Matrix out(a.rows(), a.cols());
    for (Index i = 0; i < a.size(); ++i)
        out.data()[i] = a.data()[i] - b.data()[i];
    return out;
}

Matrix
mul(const Matrix &a, const Matrix &b)
{
    checkSameShape(a, b, "mul");
    Matrix out(a.rows(), a.cols());
    for (Index i = 0; i < a.size(); ++i)
        out.data()[i] = a.data()[i] * b.data()[i];
    return out;
}

Matrix
scale(const Matrix &a, Real s)
{
    Matrix out(a.rows(), a.cols());
    for (Index i = 0; i < a.size(); ++i)
        out.data()[i] = a.data()[i] * s;
    return out;
}

Matrix
matMul(const Matrix &a, const Matrix &b)
{
    HIMA_ASSERT(a.cols() == b.rows(), "matMul: inner dims %zu vs %zu",
                a.cols(), b.rows());
    Matrix out(a.rows(), b.cols());
    for (Index r = 0; r < a.rows(); ++r) {
        for (Index k = 0; k < a.cols(); ++k) {
            const Real av = a(r, k);
            if (av == 0.0)
                continue;
            for (Index c = 0; c < b.cols(); ++c)
                out(r, c) += av * b(k, c);
        }
    }
    return out;
}

} // namespace hima
