/**
 * @file
 * Deterministic pseudo-random source used across the library.
 *
 * Every experiment in the benchmark harness must be reproducible run to
 * run, so all stochastic behaviour flows through this seeded generator
 * (xoshiro256**, a small, fast, well-studied PRNG) rather than through
 * std::random_device or global state.
 */

#ifndef HIMA_COMMON_RANDOM_H
#define HIMA_COMMON_RANDOM_H

#include <cstdint>

#include "common/tensor.h"

namespace hima {

/** Seeded xoshiro256** generator with convenience distributions. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    Real uniform();

    /** Uniform double in [lo, hi). */
    Real uniform(Real lo, Real hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    Index uniformInt(Index n);

    /** Standard normal via Box-Muller. */
    Real normal();

    /** Normal with the given mean and standard deviation. */
    Real normal(Real mean, Real stddev);

    /** Vector of iid uniform values in [lo, hi). */
    Vector uniformVector(Index n, Real lo = 0.0, Real hi = 1.0);

    /** Vector of iid normal values. */
    Vector normalVector(Index n, Real mean = 0.0, Real stddev = 1.0);

    /** Matrix of iid normal values. */
    Matrix normalMatrix(Index rows, Index cols, Real mean = 0.0,
                        Real stddev = 1.0);

    /** In-place Fisher-Yates shuffle of an index permutation [0, n). */
    std::vector<Index> permutation(Index n);

  private:
    std::uint64_t state_[4];
    bool hasSpare_ = false;
    Real spare_ = 0.0;
};

} // namespace hima

#endif // HIMA_COMMON_RANDOM_H
