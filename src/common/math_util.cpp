#include "common/math_util.h"

#include <algorithm>
#include <cmath>

namespace hima {

Real
sigmoid(Real x)
{
    return 1.0 / (1.0 + std::exp(-x));
}

Real
oneplus(Real x)
{
    return 1.0 + std::log1p(std::exp(x));
}

Vector
softmax(const Vector &x)
{
    Vector out;
    softmaxInto(x, out);
    return out;
}

void
softmaxInto(const Vector &x, Vector &out)
{
    HIMA_ASSERT(!x.empty(), "softmax of empty vector");
    const Real m = x.max();
    const Index n = x.size();
    out.resize(n);
    Real denom = 0.0;
    for (Index i = 0; i < n; ++i) {
        out[i] = std::exp(x[i] - m);
        denom += out[i];
    }
    for (Index i = 0; i < n; ++i)
        out[i] /= denom;
}

Vector
softmax(const Vector &x, Real beta)
{
    return softmax(scale(x, beta));
}

Vector
tanhVec(const Vector &x)
{
    Vector out(x.size());
    for (Index i = 0; i < x.size(); ++i)
        out[i] = std::tanh(x[i]);
    return out;
}

Vector
sigmoidVec(const Vector &x)
{
    Vector out(x.size());
    for (Index i = 0; i < x.size(); ++i)
        out[i] = sigmoid(x[i]);
    return out;
}

Real
clamp(Real x, Real lo, Real hi)
{
    return std::min(std::max(x, lo), hi);
}

bool
nearlyEqual(Real a, Real b, Real tol)
{
    return std::fabs(a - b) <= tol;
}

} // namespace hima
