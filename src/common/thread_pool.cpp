#include "common/thread_pool.h"

namespace hima {

ThreadPool::ThreadPool(Index threads)
{
    HIMA_ASSERT(threads >= 1, "thread pool needs at least one lane");
    workers_.reserve(threads - 1);
    for (Index i = 0; i + 1 < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    startCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::drain(const std::function<void(Index)> &fn)
{
    // Pull indices off the shared counter until the space is exhausted.
    // Tracking completions (remaining_) separately from claims
    // (nextIndex_) is what makes the join barrier correct: the space
    // can be fully *claimed* while calls are still running.
    for (;;) {
        const Index i = nextIndex_.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobCount_)
            break;
        try {
            fn(i);
        } catch (...) {
            // Keep the first exception; the rest of the index space still
            // runs so the join barrier and every-index guarantee hold.
            std::lock_guard<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(mutex_);
            doneCv_.notify_all();
        }
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seenGeneration = 0;
    for (;;) {
        const std::function<void(Index)> *job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            startCv_.wait(lock, [&] {
                return stop_ || generation_ != seenGeneration;
            });
            if (stop_)
                return;
            seenGeneration = generation_;
            job = job_;
            // The job can already be complete and cleared by the time a
            // slow waker gets the mutex (the caller drains its own lane);
            // job_ is then null and there is nothing to bind to.
            if (job == nullptr)
                continue;
            ++drainers_;
        }
        drain(*job);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --drainers_;
        }
        doneCv_.notify_all();
    }
}

void
ThreadPool::parallelFor(Index count, const std::function<void(Index)> &fn)
{
    if (count == 0)
        return;
    if (workers_.empty()) {
        // Same contract as the threaded path: every index runs, the
        // first exception is rethrown after the space is exhausted.
        std::exception_ptr error;
        for (Index i = 0; i < count; ++i) {
            try {
                fn(i);
            } catch (...) {
                if (!error)
                    error = std::current_exception();
            }
        }
        if (error)
            std::rethrow_exception(error);
        return;
    }

    {
        std::unique_lock<std::mutex> lock(mutex_);
        // A worker that finished the previous job but has not yet made
        // its final (failing) claim would otherwise race onto the fresh
        // index space with the old function — wait it out.
        doneCv_.wait(lock, [&] { return drainers_ == 0; });
        job_ = &fn;
        firstError_ = nullptr;
        jobCount_ = count;
        nextIndex_.store(0, std::memory_order_relaxed);
        remaining_.store(count, std::memory_order_relaxed);
        ++generation_;
    }
    startCv_.notify_all();

    drain(fn); // the caller is a lane too

    std::unique_lock<std::mutex> lock(mutex_);
    doneCv_.wait(lock, [&] {
        return remaining_.load(std::memory_order_acquire) == 0;
    });
    // Cleared under the mutex so late-waking workers observe null (fn
    // dies with this frame; a dangling pointer here would be UB to
    // dereference even without invoking it). jobCount_ is left as-is:
    // a straggler still inside drain() reads it lock-free, and any
    // claim it makes against the exhausted index space fails anyway.
    job_ = nullptr;
    if (firstError_) {
        std::exception_ptr error = firstError_;
        firstError_ = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

} // namespace hima
