/**
 * @file
 * HiMA's local-global two-stage usage sort (Sec. 4.3, Fig. 7(b)).
 *
 * Stage 1: the usage vector, already sharded across the Nt processing
 * tiles, is sorted locally by each tile's MDSA sorter. All tiles sort in
 * parallel, so the stage-1 latency is one tile's 6 * (P + D_DPBS).
 *
 * Stage 2: the Nt sorted shards stream into the controller tile's usage
 * buffers and drain through the Nt-input parallel merge sorter at Nt
 * records per cycle: n + D_PMS cycles for shard length n = N / Nt.
 *
 * Total for N = 1024, Nt = 4: 6*(16+5) + 256 + 7 = 389 cycles, versus
 * N log2 N = 10240 for the centralized baseline — the paper's example.
 */

#ifndef HIMA_SORT_TWO_STAGE_SORT_H
#define HIMA_SORT_TWO_STAGE_SORT_H

#include "sort/centralized_sort.h"
#include "sort/mdsa.h"
#include "sort/merge_sorter.h"

namespace hima {

/** Cycle breakdown of one two-stage sort pass. */
struct TwoStageTiming
{
    std::uint64_t localCycles;  ///< stage-1 MDSA latency (parallel max)
    std::uint64_t globalCycles; ///< stage-2 PMS drain latency
    std::uint64_t totalCycles;  ///< sum of the two stages
};

/** Distributed two-stage usage sorter over Nt tiles. */
class TwoStageSorter
{
  public:
    /**
     * @param n   total usage length N (shards of N / Nt per tile)
     * @param nt  tile count; must divide n
     */
    TwoStageSorter(Index n, Index nt);

    /**
     * Sort a full-length usage record vector. Input is sharded
     * contiguously (tile t owns records [t*n/Nt, (t+1)*n/Nt)), mirroring
     * the row-wise state-memory partition.
     */
    SortResult sort(const std::vector<SortRecord> &input,
                    SortOrder order) const;

    /** Cycle model without running the functional path. */
    TwoStageTiming modelTiming() const;

    Index length() const { return n_; }
    Index tiles() const { return nt_; }
    Index shardLength() const { return n_ / nt_; }

  private:
    Index n_;
    Index nt_;
    MdsaSorter localSorter_;
    ParallelMergeSorter globalSorter_;
};

} // namespace hima

#endif // HIMA_SORT_TWO_STAGE_SORT_H
