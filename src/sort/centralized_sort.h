/**
 * @file
 * Centralized merge sort baseline, the Fig. 7(a) organization used by
 * Farm [4]: one pre-sort unit plus a sequential merge-sort controller over
 * a single usage buffer. The paper charges it N * log2(N) cycles for a
 * length-N vector; the functional path executes a genuine bottom-up merge
 * sort so comparator counts are measured, not assumed.
 */

#ifndef HIMA_SORT_CENTRALIZED_SORT_H
#define HIMA_SORT_CENTRALIZED_SORT_H

#include "sort/sort_types.h"

namespace hima {

/** Sequential bottom-up merge sorter with the paper's N log N cycle model. */
class CentralizedSorter
{
  public:
    /** Sort all records. */
    SortResult sort(const std::vector<SortRecord> &input,
                    SortOrder order) const;

    /** Paper cycle model: N * ceil(log2 N). */
    static std::uint64_t modelCycles(Index n);
};

} // namespace hima

#endif // HIMA_SORT_CENTRALIZED_SORT_H
