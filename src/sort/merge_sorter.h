/**
 * @file
 * Nt-input parallel merge sorter (PMS) model, after Mashimo et al. [23],
 * used by the HiMA controller tile for the stage-2 global usage sort.
 *
 * The PMS consumes Nt sorted runs held in Nt memory banks and emits Nt
 * merged outputs per cycle through a pipelined merge tree. With runs of
 * total length N the merge drains in N / Nt cycles plus the pipeline
 * depth D_PMS. The paper's 4-input PMS has D_PMS = 7, which matches
 * 3 * log2(Nt) + 1.
 */

#ifndef HIMA_SORT_MERGE_SORTER_H
#define HIMA_SORT_MERGE_SORTER_H

#include "sort/sort_types.h"

namespace hima {

/** Nt-way pipelined hardware merge sorter. */
class ParallelMergeSorter
{
  public:
    /** Construct an Nt-input merger (Nt >= 1; non-powers of two round up). */
    explicit ParallelMergeSorter(Index ways);

    /**
     * Merge `runs` (each already sorted in `order`) into one sorted
     * sequence. The cycle model is totalLength / ways + pipelineDepth().
     */
    SortResult merge(const std::vector<std::vector<SortRecord>> &runs,
                     SortOrder order) const;

    Index ways() const { return ways_; }

    /** Pipeline depth: 3 * log2(ways) + 1 (D_PMS = 7 for 4 ways). */
    std::uint64_t pipelineDepth() const;

  private:
    Index ways_;
    int log2Ways_;
};

} // namespace hima

#endif // HIMA_SORT_MERGE_SORTER_H
