#include "sort/mdsa.h"

#include <cmath>
#include <limits>

namespace hima {

MdsaSorter::MdsaSorter(Index n)
    : n_(n),
      p_(static_cast<Index>(std::ceil(std::sqrt(static_cast<double>(n))))),
      rowSorter_(p_)
{
    HIMA_ASSERT(n_ >= 1, "MDSA needs at least one element");
}

SortResult
MdsaSorter::sort(const std::vector<SortRecord> &input, SortOrder order) const
{
    HIMA_ASSERT(input.size() == n_, "MDSA input size %zu != %zu",
                input.size(), n_);

    const Index cells = p_ * p_;
    const Real sentinel = order == SortOrder::Ascending
                              ? std::numeric_limits<Real>::infinity()
                              : -std::numeric_limits<Real>::infinity();
    std::vector<SortRecord> grid(cells,
                                 {sentinel, std::numeric_limits<Index>::max()});
    std::copy(input.begin(), input.end(), grid.begin());

    auto at = [&](Index r, Index c) -> SortRecord & {
        return grid[r * p_ + c];
    };

    // Snake read-out order: even rows left-to-right, odd rows reversed.
    auto snakeSorted = [&] {
        SortRecord prev = at(0, 0);
        for (Index r = 0; r < p_; ++r) {
            for (Index k = 0; k < p_; ++k) {
                const Index c = (r % 2 == 0) ? k : p_ - 1 - k;
                if (r == 0 && c == 0)
                    continue;
                const SortRecord &cur = at(r, c);
                // Converge to the full (key, idx) total order so the
                // two-stage pipeline is permutation-exact vs. reference.
                if (recordLess(cur, prev, order))
                    return false;
                prev = cur;
            }
        }
        return true;
    };

    std::uint64_t comparisons = 0;
    std::vector<SortRecord> lane(p_);

    // Shear sort: alternate snake-ordered row sorts with column sorts.
    // ceil(log2 P) + 1 round trips always suffice; the loop bound is a
    // safety net, and tests assert convergence within the modeled budget.
    const int maxRounds = 2 * (static_cast<int>(std::ceil(
                                   std::log2(static_cast<double>(p_)))) +
                               2);
    for (int round = 0; round < maxRounds && !snakeSorted(); ++round) {
        // Row phase: even rows follow `order`, odd rows the reverse, so
        // the snake stays monotone end to end.
        for (Index r = 0; r < p_; ++r) {
            for (Index c = 0; c < p_; ++c)
                lane[c] = at(r, c);
            const bool flip = (r % 2 == 1);
            const SortOrder rowOrder =
                (order == SortOrder::Ascending) != flip
                    ? SortOrder::Ascending
                    : SortOrder::Descending;
            SortResult res = rowSorter_.sort(lane, rowOrder);
            comparisons += res.comparisons;
            for (Index c = 0; c < p_; ++c)
                at(r, c) = res.records[c];
        }
        // Column phase: all columns in the global order.
        for (Index c = 0; c < p_; ++c) {
            for (Index r = 0; r < p_; ++r)
                lane[r] = at(r, c);
            SortResult res = rowSorter_.sort(lane, order);
            comparisons += res.comparisons;
            for (Index r = 0; r < p_; ++r)
                at(r, c) = res.records[r];
        }
    }
    HIMA_ASSERT(snakeSorted(), "shear sort failed to converge (P=%zu)", p_);

    SortResult result;
    result.records.reserve(n_);
    for (Index r = 0; r < p_ && result.records.size() < n_; ++r) {
        for (Index k = 0; k < p_ && result.records.size() < n_; ++k) {
            const Index c = (r % 2 == 0) ? k : p_ - 1 - k;
            const SortRecord &rec = at(r, c);
            // Sentinels sort to the tail for ascending (head never), so a
            // record with the sentinel index marks padding to skip.
            if (rec.idx == std::numeric_limits<Index>::max())
                continue;
            result.records.push_back(rec);
        }
    }
    HIMA_ASSERT(result.records.size() == n_,
                "MDSA lost records: %zu of %zu", result.records.size(), n_);
    result.cycles = modelCycles();
    result.comparisons = comparisons;
    return result;
}

std::uint64_t
MdsaSorter::modelCycles() const
{
    return static_cast<std::uint64_t>(modelPhases) *
           (p_ + rowSorter_.pipelineDepth());
}

} // namespace hima
