#include "sort/merge_sorter.h"

#include <queue>

namespace hima {

namespace {

int
ceilLog2(Index n)
{
    int bits = 0;
    Index v = 1;
    while (v < n) {
        v <<= 1;
        ++bits;
    }
    return bits;
}

} // namespace

ParallelMergeSorter::ParallelMergeSorter(Index ways) : ways_(ways)
{
    HIMA_ASSERT(ways_ >= 1, "PMS needs at least one way");
    log2Ways_ = ceilLog2(ways_);
}

SortResult
ParallelMergeSorter::merge(const std::vector<std::vector<SortRecord>> &runs,
                           SortOrder order) const
{
    HIMA_ASSERT(runs.size() <= ways_, "PMS fed %zu runs but has %zu ways",
                runs.size(), ways_);
    for (const auto &run : runs) {
        HIMA_ASSERT(isSorted(run, order), "PMS input run not sorted");
    }

    // Functional k-way merge with per-bank read pointers (the hardware's
    // bank-pointer update logic in Fig. 7(b)).
    struct Head
    {
        SortRecord rec;
        Index run;
    };
    auto cmp = [order](const Head &a, const Head &b) {
        // priority_queue is a max-heap; invert to pop the next-in-order.
        return recordLess(b.rec, a.rec, order);
    };
    std::priority_queue<Head, std::vector<Head>, decltype(cmp)> heap(cmp);
    std::vector<Index> ptr(runs.size(), 0);

    std::uint64_t total = 0;
    for (Index r = 0; r < runs.size(); ++r) {
        total += runs[r].size();
        if (!runs[r].empty())
            heap.push({runs[r][0], r});
    }

    SortResult result;
    result.records.reserve(total);
    std::uint64_t comparisons = 0;
    while (!heap.empty()) {
        Head head = heap.top();
        heap.pop();
        result.records.push_back(head.rec);
        const Index r = head.run;
        if (++ptr[r] < runs[r].size()) {
            heap.push({runs[r][ptr[r]], r});
            // Each heap reinsertion costs ~log2(ways) comparator hits in
            // the merge tree.
            comparisons += static_cast<std::uint64_t>(log2Ways_) + 1;
        }
    }

    result.cycles = (total + ways_ - 1) / ways_ + pipelineDepth();
    result.comparisons = comparisons;
    return result;
}

std::uint64_t
ParallelMergeSorter::pipelineDepth() const
{
    return 3 * static_cast<std::uint64_t>(log2Ways_) + 1;
}

} // namespace hima
