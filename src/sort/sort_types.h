/**
 * @file
 * Shared types for the hardware sorter models.
 *
 * Every sorter in this library sorts (key, index) records: the DNC usage
 * sort needs the *permutation* (the free list ordering), not just the
 * sorted keys, because the allocation weighting writes results back to the
 * original memory-slot positions (HW.(3) in Fig. 2).
 */

#ifndef HIMA_SORT_SORT_TYPES_H
#define HIMA_SORT_SORT_TYPES_H

#include <cstdint>
#include <vector>

#include "common/tensor.h"

namespace hima {

/** One sortable record: a usage value plus its originating slot index. */
struct SortRecord
{
    Real key;
    Index idx;

    bool operator==(const SortRecord &) const = default;
};

/** Sort direction; the DPBS is dual-mode and supports both. */
enum class SortOrder
{
    Ascending,
    Descending,
};

/** Records-with-timing result every sorter returns. */
struct SortResult
{
    std::vector<SortRecord> records;
    /** Modeled hardware latency in cycles. */
    std::uint64_t cycles;
    /** Total comparator activations (energy-model input). */
    std::uint64_t comparisons;
};

/** Build records from a usage vector (idx = position). */
std::vector<SortRecord> makeRecords(const Vector &keys);

/** True when records are ordered by key (ties in any index order). */
bool isSorted(const std::vector<SortRecord> &records, SortOrder order);

/**
 * Strict total order on records. Ascending is (key, idx) lexicographic;
 * Descending is its exact reverse. Making the two directions mirror
 * images lets the dual-mode hardware sorters, the parallel merge sorter
 * and the std::sort reference all realize the *same* permutation, which
 * the allocation-weighting equivalence tests rely on.
 */
inline bool
recordLess(const SortRecord &a, const SortRecord &b, SortOrder order)
{
    if (order == SortOrder::Ascending) {
        if (a.key != b.key)
            return a.key < b.key;
        return a.idx < b.idx;
    }
    if (a.key != b.key)
        return a.key > b.key;
    return a.idx > b.idx;
}

} // namespace hima

#endif // HIMA_SORT_SORT_TYPES_H
