#include "sort/two_stage_sort.h"

namespace hima {

TwoStageSorter::TwoStageSorter(Index n, Index nt)
    : n_(n), nt_(nt), localSorter_(n / nt), globalSorter_(nt)
{
    HIMA_ASSERT(nt_ >= 1, "need at least one tile");
    HIMA_ASSERT(n_ % nt_ == 0, "N=%zu not divisible by Nt=%zu", n_, nt_);
}

SortResult
TwoStageSorter::sort(const std::vector<SortRecord> &input,
                     SortOrder order) const
{
    HIMA_ASSERT(input.size() == n_, "input length %zu != N=%zu",
                input.size(), n_);

    const Index shard = shardLength();
    std::vector<std::vector<SortRecord>> runs;
    runs.reserve(nt_);

    std::uint64_t comparisons = 0;
    for (Index t = 0; t < nt_; ++t) {
        std::vector<SortRecord> local(input.begin() + t * shard,
                                      input.begin() + (t + 1) * shard);
        SortResult res = localSorter_.sort(local, order);
        comparisons += res.comparisons;
        runs.push_back(std::move(res.records));
    }

    SortResult merged = globalSorter_.merge(runs, order);
    comparisons += merged.comparisons;

    SortResult result;
    result.records = std::move(merged.records);
    result.comparisons = comparisons;
    result.cycles = modelTiming().totalCycles;
    return result;
}

TwoStageTiming
TwoStageSorter::modelTiming() const
{
    TwoStageTiming t;
    t.localCycles = localSorter_.modelCycles();
    t.globalCycles = shardLength() + globalSorter_.pipelineDepth();
    t.totalCycles = t.localCycles + t.globalCycles;
    return t;
}

} // namespace hima
