/**
 * @file
 * Dual-mode pipelined bitonic sorter (DPBS) model, after Norollah et al.
 * [24] as used by HiMA's MDSA local sorter (Sec. 4.3).
 *
 * The functional path executes the exact bitonic sorting network on P
 * inputs (P padded to a power of two with sentinels); the timing model
 * reports the pipeline depth: a P-input DPBS is pipelined so that one
 * P-vector enters per cycle and results emerge `pipelineDepth()` cycles
 * later. The paper's 16-input DPBS has depth 5, which matches
 * log2(P) + 1 (merge network stages plus the output register).
 */

#ifndef HIMA_SORT_BITONIC_H
#define HIMA_SORT_BITONIC_H

#include "sort/sort_types.h"

namespace hima {

/** P-input dual-mode pipelined bitonic sorter. */
class BitonicSorter
{
  public:
    /** Construct a sorter for vectors of length `width` (any size >= 1). */
    explicit BitonicSorter(Index width);

    /**
     * Sort one vector of exactly width() records in the given direction.
     * Returns the sorted records, the pipeline latency and the comparator
     * count for this pass.
     */
    SortResult sort(const std::vector<SortRecord> &input,
                    SortOrder order) const;

    Index width() const { return width_; }

    /** Padded power-of-two network width. */
    Index networkWidth() const { return netWidth_; }

    /**
     * Pipeline register stages of the dual-mode sorter: log2(P) + 1,
     * matching the paper's D_DPBS = 5 for P = 16.
     */
    std::uint64_t pipelineDepth() const;

    /**
     * Comparator stages of a full bitonic sort network on P inputs:
     * log2(P) * (log2(P) + 1) / 2.
     */
    std::uint64_t networkStages() const;

    /** Comparators in the full network (stages * P/2). */
    std::uint64_t comparatorCount() const;

  private:
    Index width_;
    Index netWidth_;
    int log2Width_;
};

} // namespace hima

#endif // HIMA_SORT_BITONIC_H
