/**
 * @file
 * Multi-dimensional sorting algorithm (MDSA) local sorter, after RTHS [24],
 * used by each HiMA processing tile for the stage-1 usage sort (Sec. 4.3).
 *
 * A length-n vector is reshaped into a P x P register file (P = ceil
 * sqrt(n)). Rows and columns are alternately passed through the P-input
 * dual-mode bitonic sorter (rows in snake — alternating — order, columns
 * always ascending), which is shear sort. HiMA's cycle model charges the
 * paper's 6 phases of (P vectors + DPBS pipeline depth) each:
 *
 *     cycles = 6 * (P + D_DPBS)        e.g. 6 * (16 + 5) = 126 for n = 256
 *
 * The functional path runs shear-sort phases until the register file is
 * fully sorted, which for P <= 32 always converges within the modeled
 * phase budget (asserted in tests).
 */

#ifndef HIMA_SORT_MDSA_H
#define HIMA_SORT_MDSA_H

#include "sort/bitonic.h"

namespace hima {

/** P x P shear-sort engine with a DPBS per dimension. */
class MdsaSorter
{
  public:
    /** Construct for vectors of length n (P = ceil(sqrt(n))). */
    explicit MdsaSorter(Index n);

    /** Sort n records; returns records in fully sorted order. */
    SortResult sort(const std::vector<SortRecord> &input,
                    SortOrder order) const;

    Index length() const { return n_; }
    Index gridDim() const { return p_; }

    /** Paper cycle model: 6 * (P + D_DPBS). */
    std::uint64_t modelCycles() const;

    /** Phases the paper budgets for a full sort. */
    static constexpr int modelPhases = 6;

  private:
    Index n_;
    Index p_;
    BitonicSorter rowSorter_;
};

} // namespace hima

#endif // HIMA_SORT_MDSA_H
