#include "sort/bitonic.h"

#include <algorithm>
#include <limits>

namespace hima {

std::vector<SortRecord>
makeRecords(const Vector &keys)
{
    std::vector<SortRecord> records(keys.size());
    for (Index i = 0; i < keys.size(); ++i)
        records[i] = {keys[i], i};
    return records;
}

bool
isSorted(const std::vector<SortRecord> &records, SortOrder order)
{
    for (Index i = 1; i < records.size(); ++i) {
        const bool ok = order == SortOrder::Ascending
                            ? records[i - 1].key <= records[i].key
                            : records[i - 1].key >= records[i].key;
        if (!ok)
            return false;
    }
    return true;
}

namespace {

int
ceilLog2(Index n)
{
    int bits = 0;
    Index v = 1;
    while (v < n) {
        v <<= 1;
        ++bits;
    }
    return bits;
}

} // namespace

BitonicSorter::BitonicSorter(Index width) : width_(width)
{
    HIMA_ASSERT(width_ >= 1, "bitonic sorter needs width >= 1");
    log2Width_ = ceilLog2(width_);
    netWidth_ = Index{1} << log2Width_;
}

SortResult
BitonicSorter::sort(const std::vector<SortRecord> &input,
                    SortOrder order) const
{
    HIMA_ASSERT(input.size() == width_,
                "bitonic input size %zu != width %zu", input.size(), width_);

    // Pad to the network width with +inf sentinels so the real records
    // always end up in the leading positions for ascending order (and the
    // comparator network stays oblivious, as hardware would be).
    const Real sentinel = order == SortOrder::Ascending
                              ? std::numeric_limits<Real>::infinity()
                              : -std::numeric_limits<Real>::infinity();
    std::vector<SortRecord> work(netWidth_,
                                 {sentinel, std::numeric_limits<Index>::max()});
    std::copy(input.begin(), input.end(), work.begin());

    std::uint64_t comparisons = 0;
    const bool ascending = order == SortOrder::Ascending;

    // Classic iterative bitonic network: k is the sorted-run size being
    // merged, j is the comparator stride inside a merge stage.
    for (Index k = 2; k <= netWidth_; k <<= 1) {
        for (Index j = k >> 1; j > 0; j >>= 1) {
            for (Index i = 0; i < netWidth_; ++i) {
                const Index partner = i ^ j;
                if (partner <= i)
                    continue;
                const bool up = ((i & k) == 0) == ascending;
                ++comparisons;
                // Tie-break by index in *both* directions (recordLess),
                // so every sorter in the library realizes the same total
                // order and the allocation weighting is backend-exact.
                const SortOrder dir =
                    up ? SortOrder::Ascending : SortOrder::Descending;
                const bool outOfOrder =
                    recordLess(work[partner], work[i], dir);
                if (outOfOrder)
                    std::swap(work[i], work[partner]);
            }
        }
    }

    SortResult result;
    result.records.assign(work.begin(), work.begin() + width_);
    result.cycles = pipelineDepth();
    result.comparisons = comparisons;
    return result;
}

std::uint64_t
BitonicSorter::pipelineDepth() const
{
    return static_cast<std::uint64_t>(log2Width_) + 1;
}

std::uint64_t
BitonicSorter::networkStages() const
{
    const std::uint64_t lg = static_cast<std::uint64_t>(log2Width_);
    return lg * (lg + 1) / 2;
}

std::uint64_t
BitonicSorter::comparatorCount() const
{
    return networkStages() * (netWidth_ / 2);
}

} // namespace hima
