#include "sort/centralized_sort.h"

#include <cmath>

namespace hima {

SortResult
CentralizedSorter::sort(const std::vector<SortRecord> &input,
                        SortOrder order) const
{
    SortResult result;
    result.records = input;
    result.comparisons = 0;

    const Index n = input.size();
    if (n <= 1) {
        result.cycles = modelCycles(n);
        return result;
    }

    // Bottom-up merge sort: runs of width 1, 2, 4, ... merged pairwise.
    std::vector<SortRecord> buffer(n);
    auto *src = &result.records;
    auto *dst = &buffer;
    for (Index width = 1; width < n; width <<= 1) {
        for (Index lo = 0; lo < n; lo += 2 * width) {
            const Index mid = std::min(lo + width, n);
            const Index hi = std::min(lo + 2 * width, n);
            Index a = lo, b = mid, w = lo;
            while (a < mid && b < hi) {
                ++result.comparisons;
                if (recordLess((*src)[b], (*src)[a], order))
                    (*dst)[w++] = (*src)[b++];
                else
                    (*dst)[w++] = (*src)[a++];
            }
            while (a < mid)
                (*dst)[w++] = (*src)[a++];
            while (b < hi)
                (*dst)[w++] = (*src)[b++];
        }
        std::swap(src, dst);
    }
    if (src != &result.records)
        result.records = *src;

    result.cycles = modelCycles(n);
    return result;
}

std::uint64_t
CentralizedSorter::modelCycles(Index n)
{
    if (n <= 1)
        return n;
    const auto lg = static_cast<std::uint64_t>(
        std::ceil(std::log2(static_cast<double>(n))));
    return static_cast<std::uint64_t>(n) * lg;
}

} // namespace hima
