/**
 * @file
 * Temporal linkage (HR.(1)-(3) in Fig. 2): the N x N linkage matrix that
 * records the order in which slots were written, the precedence vector
 * feeding it, and the forward/backward read weightings derived from it.
 *
 * This is the state memory that dominates HiMA's on-tile storage (262 KB
 * of 2.07 mm^2 PT memory in Fig. 11(e)) and the kernel with the worst NoC
 * footprint (O(Nt * N^2), Table 1).
 */

#ifndef HIMA_DNC_TEMPORAL_LINKAGE_H
#define HIMA_DNC_TEMPORAL_LINKAGE_H

#include "dnc/kernel_profiler.h"
#include "common/tensor.h"

namespace hima {

/** Linkage matrix + precedence vector with their update rules. */
class TemporalLinkage
{
  public:
    /** Construct zeroed state for an N-slot memory. */
    explicit TemporalLinkage(Index slots);

    /**
     * HR.(1) Linkage update:
     *   L <- {(E - w 1^T - 1 w^T) .* L + w p^T} .* (E - I)
     * with w the current write weighting and p the *previous* precedence.
     * Must run before updatePrecedence() each timestep.
     */
    void updateLinkage(const Vector &writeWeighting,
                       KernelProfiler *profiler = nullptr);

    /**
     * HR.(2) Precedence update: p <- (1 - sum(w)) p + w.
     */
    void updatePrecedence(const Vector &writeWeighting,
                          KernelProfiler *profiler = nullptr);

    /** HR.(3) Forward weighting f = L w_prev. */
    Vector forwardWeighting(const Vector &prevReadWeighting,
                            KernelProfiler *profiler = nullptr) const;

    /** HR.(3) Backward weighting b = L^T w_prev. */
    Vector backwardWeighting(const Vector &prevReadWeighting,
                             KernelProfiler *profiler = nullptr) const;

    const Matrix &linkage() const { return linkage_; }
    const Vector &precedence() const { return precedence_; }
    Index slots() const { return slots_; }

    /** Reset all state to zero (episode boundary). */
    void reset();

  private:
    Index slots_;
    Matrix linkage_;
    Vector precedence_;
};

} // namespace hima

#endif // HIMA_DNC_TEMPORAL_LINKAGE_H
