/**
 * @file
 * Temporal linkage (HR.(1)-(3) in Fig. 2): the N x N linkage matrix that
 * records the order in which slots were written, the precedence vector
 * feeding it, and the forward/backward read weightings derived from it.
 *
 * This is the state memory that dominates HiMA's on-tile storage (262 KB
 * of 2.07 mm^2 PT memory in Fig. 11(e)) and the kernel with the worst NoC
 * footprint (O(Nt * N^2), Table 1).
 */

#ifndef HIMA_DNC_TEMPORAL_LINKAGE_H
#define HIMA_DNC_TEMPORAL_LINKAGE_H

#include <cstdint>
#include <vector>

#include "dnc/kernel_profiler.h"
#include "common/tensor.h"

namespace hima {

/**
 * Linkage matrix + precedence vector with their update rules.
 *
 * The kernels exploit the matrix's structural sparsity: row and column
 * i of L are exactly zero until slot i has ever received write mass,
 * and the row's total mass is tracked in a per-row cache (`rowMass()`,
 * the sum of absolute entries, refreshed in the same pass that writes
 * the row). A row is *active* — swept by the update and read kernels —
 * only while its cached mass, or its current write weight, exceeds
 * `skipThreshold`; inactive rows are left untouched and contribute
 * nothing to the forward/backward weightings, so every kernel costs
 * O(A*N) instead of O(N^2), with A = active rows.
 *
 * The sweeps are additionally *column*-sparse: the class tracks the
 * monotone set of slots ever written since the last reset (`touched`
 * slots — w[j] exceeded the threshold at some step). An untouched slot
 * j has p[j] == +0.0 and L[i][j] == +0.0 for every i (the update only
 * ever adds w[i]*p[j] into column j), so the linkage update, the mass
 * refresh, the forward dots and the backward accumulations all iterate
 * the touched columns only, making the fused sweep O(A * T) with T =
 * touched slots instead of O(A * N).
 *
 * At threshold 0 (default) only exactly-zero rows/columns are skipped
 * and every kernel is bit-identical to the dense sweep (a skipped row
 * or column would have computed to all zeros and contributed +0.0
 * everywhere). A positive threshold additionally freezes rows whose
 * mass has decayed below it and drops the sub-threshold precedence
 * mass of untouched columns — the paper-style approximation,
 * quantified by `linkage_skip_sweep` in bench_hot_path. Row activity
 * is a pure function of (L, w) and is rebuilt on restore; the touched
 * set is *not* derivable from (L, p) at positive thresholds, so
 * checkpoints carry it explicitly (restoreState takes it back) — that
 * is what keeps a mid-episode restore's skip behavior indistinguishable
 * from an undisturbed run at any threshold.
 */
class TemporalLinkage
{
  public:
    /**
     * Construct zeroed state for an N-slot memory.
     *
     * @param skipThreshold active-row threshold (see class comment)
     * @param denseSweep    bench/test escape: never skip any row
     */
    explicit TemporalLinkage(Index slots, Real skipThreshold = 0.0,
                             bool denseSweep = false);

    /**
     * HR.(1) Linkage update:
     *   L <- {(E - w 1^T - 1 w^T) .* L + w p^T} .* (E - I)
     * with w the current write weighting and p the *previous* precedence.
     * Must run before updatePrecedence() each timestep.
     */
    void updateLinkage(const Vector &writeWeighting,
                       KernelProfiler *profiler = nullptr);

    /**
     * HR.(2) Precedence update: p <- (1 - sum(w)) p + w.
     */
    void updatePrecedence(const Vector &writeWeighting,
                          KernelProfiler *profiler = nullptr);

    /** HR.(3) Forward weighting f = L w_prev. */
    Vector forwardWeighting(const Vector &prevReadWeighting,
                            KernelProfiler *profiler = nullptr) const;

    /** HR.(3) Backward weighting b = L^T w_prev. */
    Vector backwardWeighting(const Vector &prevReadWeighting,
                             KernelProfiler *profiler = nullptr) const;

    /** Destination-passing forward weighting (f resized + overwritten). */
    void forwardWeightingInto(const Vector &prevReadWeighting, Vector &f,
                              KernelProfiler *profiler = nullptr) const;

    /** Destination-passing backward weighting (b resized + overwritten). */
    void backwardWeightingInto(const Vector &prevReadWeighting, Vector &b,
                               KernelProfiler *profiler = nullptr) const;

    /**
     * Fused update + read sweep: updateLinkage(writeWeighting) followed
     * by forward[h] = L w_prev[h] and backward[h] = L^T w_prev[h] for
     * every head, all in one blocked traversal of L.
     *
     * Bit-identical to the separate kernels — every per-element
     * accumulation runs in the same order — but the N x N linkage
     * matrix moves through DRAM once per step instead of once per
     * kernel invocation (2 + 2R passes), which is what the O(N^2)
     * kernels are bound by at large N. Profiler op counts and
     * invocation counts match the separate calls; wall-clock time is
     * split between the Linkage and ForwardBackward scopes at block
     * granularity.
     *
     * Does not touch the precedence vector: call updatePrecedence()
     * afterwards, exactly as with the separate kernels.
     */
    void updateAndRead(const Vector &writeWeighting,
                       const std::vector<Vector> &prevReadWeightings,
                       std::vector<Vector> &forward,
                       std::vector<Vector> &backward,
                       KernelProfiler *profiler = nullptr);

    const Matrix &linkage() const { return linkage_; }
    const Vector &precedence() const { return precedence_; }
    Index slots() const { return slots_; }
    Real skipThreshold() const { return skipThreshold_; }

    /**
     * Per-row mass cache: rowMass()[i] == sum_j |L[i][j]|, refreshed in
     * the same pass that last wrote row i (bit-identical to a fresh
     * recompute in ascending-j order — restoreState() relies on that).
     * Rows skipped by the sweep keep their previous (still valid) mass.
     */
    const Vector &rowMass() const { return rowMass_; }

    /** Rows the next sweep would visit given a zero write weighting. */
    Index
    activeRowCount() const
    {
        Index active = 0;
        for (Index i = 0; i < slots_; ++i)
            if (rowMass_[i] > skipThreshold_)
                ++active;
        return active;
    }

    /**
     * The monotone touched-slot set: slots whose write weight exceeded
     * the skip threshold at some step since the last reset (every slot
     * when the dense escape is on), ascending. This is the column set
     * every sweep iterates, and the set checkpoints must carry for a
     * restore to reproduce an undisturbed run at positive thresholds.
     */
    const std::vector<Index> &touchedSlots() const;

    /** Reset all state to zero (episode boundary). */
    void reset();

    /**
     * Overwrite linkage + precedence from a flat row-major snapshot
     * (checkpoint restore; fatal on size mismatch). Rebuilds the
     * active-row mass cache from the restored matrix — the recompute
     * uses the same per-row summation order as the sweep's refresh, so
     * a restored run's skip decisions are bit-identical to an
     * undisturbed one at any threshold.
     *
     * `touchedSlots` is the snapshotted touched set (strictly
     * ascending; fatal otherwise). Columns holding nonzero restored
     * mass are unioned in defensively, so a faithful snapshot restores
     * exactly and a hand-edited one stays safe.
     */
    void restoreState(const Vector &linkageFlat, const Vector &precedence,
                      const std::vector<Index> &touchedSlots);

    /**
     * Legacy two-argument restore: derives the touched set as {columns
     * with nonzero mass} union {slots with nonzero precedence}. At
     * threshold 0 that is exactly the semantic touched set (modulo
     * fully-decayed slots, whose handling is bit-identical either way);
     * at positive thresholds it can over-mark slots whose write weight
     * never exceeded the threshold — prefer the three-argument form,
     * which checkpoints use.
     */
    void restoreState(const Vector &linkageFlat, const Vector &precedence);

  private:
    /** updateAndRead() body specialized on the head count R. */
    template <Index R>
    void updateAndReadImpl(const Vector &writeWeighting,
                           std::vector<Vector> &forward,
                           std::vector<Vector> &backward,
                           KernelProfiler *profiler);

    /**
     * Collect the rows `writeWeighting` makes active into activeRows_,
     * fold newly written slots into the touched set, and rebuild
     * touchedList_ — one O(N) pass per step.
     */
    Index gatherActiveRows(const Real *writeWeighting);

    /**
     * Rebuild rowMass_ from the full matrix (restoreState's recompute,
     * same ascending-j order as the sweeps' refresh) and mark every
     * column holding a nonzero entry as touched, in one fused pass.
     */
    void rebuildMassAndMarkTouched();

    Index slots_;
    Real skipThreshold_;
    bool denseSweep_;
    Matrix linkage_;
    Vector precedence_;
    Vector rowMass_; ///< per-row sum of |L[i][j]| (see rowMass())

    // Active-row scratch for the sweeps, reserved at construction so
    // steady-state steps stay allocation-free.
    std::vector<Index> activeRows_;

    // Monotone touched-slot flags (cleared on reset) and their ascending
    // index list. The list is rebuilt lazily — the const read kernels
    // consume it, so it is mutable and revalidated on demand; capacity
    // is reserved at construction, keeping steady state allocation-free.
    std::vector<std::uint8_t> touched_;
    mutable std::vector<Index> touchedList_;
    mutable bool touchedListValid_ = false;

    // Head-interleaved scratch for the fused sweep (slots x R each,
    // grown on first use): lane h of word j holds head h's value for
    // slot j, which lets the per-head accumulation chains run as one
    // SIMD lane group while keeping every chain's order intact.
    std::vector<Real> interleavedReads_;
    std::vector<Real> interleavedBackward_;
};

} // namespace hima

#endif // HIMA_DNC_TEMPORAL_LINKAGE_H
