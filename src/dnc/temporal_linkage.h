/**
 * @file
 * Temporal linkage (HR.(1)-(3) in Fig. 2): the N x N linkage matrix that
 * records the order in which slots were written, the precedence vector
 * feeding it, and the forward/backward read weightings derived from it.
 *
 * This is the state memory that dominates HiMA's on-tile storage (262 KB
 * of 2.07 mm^2 PT memory in Fig. 11(e)) and the kernel with the worst NoC
 * footprint (O(Nt * N^2), Table 1).
 */

#ifndef HIMA_DNC_TEMPORAL_LINKAGE_H
#define HIMA_DNC_TEMPORAL_LINKAGE_H

#include "dnc/kernel_profiler.h"
#include "common/tensor.h"

namespace hima {

/** Linkage matrix + precedence vector with their update rules. */
class TemporalLinkage
{
  public:
    /** Construct zeroed state for an N-slot memory. */
    explicit TemporalLinkage(Index slots);

    /**
     * HR.(1) Linkage update:
     *   L <- {(E - w 1^T - 1 w^T) .* L + w p^T} .* (E - I)
     * with w the current write weighting and p the *previous* precedence.
     * Must run before updatePrecedence() each timestep.
     */
    void updateLinkage(const Vector &writeWeighting,
                       KernelProfiler *profiler = nullptr);

    /**
     * HR.(2) Precedence update: p <- (1 - sum(w)) p + w.
     */
    void updatePrecedence(const Vector &writeWeighting,
                          KernelProfiler *profiler = nullptr);

    /** HR.(3) Forward weighting f = L w_prev. */
    Vector forwardWeighting(const Vector &prevReadWeighting,
                            KernelProfiler *profiler = nullptr) const;

    /** HR.(3) Backward weighting b = L^T w_prev. */
    Vector backwardWeighting(const Vector &prevReadWeighting,
                             KernelProfiler *profiler = nullptr) const;

    /** Destination-passing forward weighting (f resized + overwritten). */
    void forwardWeightingInto(const Vector &prevReadWeighting, Vector &f,
                              KernelProfiler *profiler = nullptr) const;

    /** Destination-passing backward weighting (b resized + overwritten). */
    void backwardWeightingInto(const Vector &prevReadWeighting, Vector &b,
                               KernelProfiler *profiler = nullptr) const;

    /**
     * Fused update + read sweep: updateLinkage(writeWeighting) followed
     * by forward[h] = L w_prev[h] and backward[h] = L^T w_prev[h] for
     * every head, all in one blocked traversal of L.
     *
     * Bit-identical to the separate kernels — every per-element
     * accumulation runs in the same order — but the N x N linkage
     * matrix moves through DRAM once per step instead of once per
     * kernel invocation (2 + 2R passes), which is what the O(N^2)
     * kernels are bound by at large N. Profiler op counts and
     * invocation counts match the separate calls; wall-clock time is
     * split between the Linkage and ForwardBackward scopes at block
     * granularity.
     *
     * Does not touch the precedence vector: call updatePrecedence()
     * afterwards, exactly as with the separate kernels.
     */
    void updateAndRead(const Vector &writeWeighting,
                       const std::vector<Vector> &prevReadWeightings,
                       std::vector<Vector> &forward,
                       std::vector<Vector> &backward,
                       KernelProfiler *profiler = nullptr);

    const Matrix &linkage() const { return linkage_; }
    const Vector &precedence() const { return precedence_; }
    Index slots() const { return slots_; }

    /** Reset all state to zero (episode boundary). */
    void reset();

    /**
     * Overwrite linkage + precedence from a flat row-major snapshot
     * (checkpoint restore; fatal on size mismatch).
     */
    void restoreState(const Vector &linkageFlat, const Vector &precedence);

  private:
    /** updateAndRead() body specialized on the head count R. */
    template <Index R>
    void updateAndReadImpl(const Vector &writeWeighting,
                           std::vector<Vector> &forward,
                           std::vector<Vector> &backward,
                           KernelProfiler *profiler);

    Index slots_;
    Matrix linkage_;
    Vector precedence_;

    // Head-interleaved scratch for the fused sweep (slots x R each,
    // grown on first use): lane h of word j holds head h's value for
    // slot j, which lets the per-head accumulation chains run as one
    // SIMD lane group while keeping every chain's order intact.
    std::vector<Real> interleavedReads_;
    std::vector<Real> interleavedBackward_;
};

} // namespace hima

#endif // HIMA_DNC_TEMPORAL_LINKAGE_H
