#include "dnc/kernel_profiler.h"

#include "common/logging.h"

namespace hima {

const char *
kernelName(Kernel k)
{
    switch (k) {
      case Kernel::Normalize: return "Normalize";
      case Kernel::Similarity: return "Similarity";
      case Kernel::MemoryWrite: return "Memory Write";
      case Kernel::MemoryRead: return "Memory Read";
      case Kernel::Retention: return "Retention";
      case Kernel::Usage: return "Usage";
      case Kernel::UsageSort: return "Usage Sort";
      case Kernel::Allocation: return "Allocation";
      case Kernel::WriteMerge: return "Wr. Weight Merge";
      case Kernel::Linkage: return "Linkage";
      case Kernel::Precedence: return "Precedence";
      case Kernel::ForwardBackward: return "Forward-Backward";
      case Kernel::ReadMerge: return "Rd. Weight Merge";
      case Kernel::Lstm: return "NN (LSTM)";
      default: HIMA_PANIC("bad kernel id %d", static_cast<int>(k));
    }
}

KernelCategory
kernelCategory(Kernel k)
{
    switch (k) {
      case Kernel::Normalize:
      case Kernel::Similarity:
        return KernelCategory::ContentWeighting;
      case Kernel::MemoryWrite:
      case Kernel::MemoryRead:
        return KernelCategory::MemoryAccess;
      case Kernel::Retention:
      case Kernel::Usage:
      case Kernel::UsageSort:
      case Kernel::Allocation:
      case Kernel::WriteMerge:
        return KernelCategory::HistoryWrite;
      case Kernel::Linkage:
      case Kernel::Precedence:
      case Kernel::ForwardBackward:
      case Kernel::ReadMerge:
        return KernelCategory::HistoryRead;
      case Kernel::Lstm:
        return KernelCategory::Nn;
      default: HIMA_PANIC("bad kernel id %d", static_cast<int>(k));
    }
}

const char *
categoryName(KernelCategory c)
{
    switch (c) {
      case KernelCategory::ContentWeighting:
        return "Content-based Weighting";
      case KernelCategory::MemoryAccess:
        return "Write/Read Mem. Access";
      case KernelCategory::HistoryWrite:
        return "Hist.-based Wr. Weighting";
      case KernelCategory::HistoryRead:
        return "Hist.-based Rd. Weighting";
      case KernelCategory::Nn:
        return "NN (LSTM)";
      default: HIMA_PANIC("bad category id %d", static_cast<int>(c));
    }
}

void
KernelCounters::merge(const KernelCounters &other)
{
    invocations += other.invocations;
    macOps += other.macOps;
    elementOps += other.elementOps;
    specialOps += other.specialOps;
    compareOps += other.compareOps;
    extMemAccesses += other.extMemAccesses;
    stateMemAccesses += other.stateMemAccesses;
    nanoseconds += other.nanoseconds;
    skippedRows += other.skippedRows;
    skippedOps += other.skippedOps;
}

KernelCounters &
KernelProfiler::at(Kernel k)
{
    return counters_[static_cast<int>(k)];
}

const KernelCounters &
KernelProfiler::at(Kernel k) const
{
    return counters_[static_cast<int>(k)];
}

KernelCounters
KernelProfiler::categoryTotal(KernelCategory c) const
{
    KernelCounters total;
    for (int i = 0; i < static_cast<int>(Kernel::NumKernels); ++i) {
        const auto k = static_cast<Kernel>(i);
        if (kernelCategory(k) == c)
            total.merge(counters_[i]);
    }
    return total;
}

KernelCounters
KernelProfiler::grandTotal() const
{
    KernelCounters total;
    for (const auto &c : counters_)
        total.merge(c);
    return total;
}

void
KernelProfiler::merge(const KernelProfiler &other)
{
    for (int i = 0; i < static_cast<int>(Kernel::NumKernels); ++i)
        counters_[i].merge(other.counters_[i]);
}

void
KernelProfiler::reset()
{
    counters_ = {};
}

} // namespace hima
