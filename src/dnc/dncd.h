/**
 * @file
 * DNC-D: the distributed DNC model (Sec. 5.1, Fig. 8).
 *
 * The external memory and *all* state memories are sharded across Nt
 * tiles; each tile runs the complete soft write + soft read pipeline on
 * its local N/Nt-row shard with no inter-tile communication. The tile
 * read vectors are merged by a weighted sum
 *
 *     v_r = sum_i alpha_i * v_r_i,   alpha in [0,1]
 *
 * where the paper trains the alphas through the LSTM. At inference time
 * we model the trained gating with a content-confidence softmax: each
 * tile's alpha is proportional to exp(beta * best cosine match) between
 * the read key and that tile's memory rows — the tile that actually holds
 * the matching record dominates the merge, which is what the trained
 * gating converges to for retrieval workloads (see DESIGN.md).
 *
 * The stepping surface is the abstract TileMemory: DncD is the
 * in-process implementation (tiles on a thread pool); the multi-process
 * ShardCoordinator (src/shard/coordinator.h) implements the same
 * surface over a wire protocol and must match DncD bit for bit. The
 * merge arithmetic both share lives here — ConfidenceGate (alpha
 * selection + softmax) and mergeTileReadouts (the Eq. 4 weighted sum
 * plus the global-view weighting concat) — so the two backends cannot
 * drift apart numerically.
 */

#ifndef HIMA_DNC_DNCD_H
#define HIMA_DNC_DNCD_H

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "dnc/dnc.h"

namespace hima {

/** How DNC-D merges the per-tile read vectors. */
enum class MergePolicy
{
    /** Uniform alphas (1/Nt each) — the untrained lower bound. */
    Uniform,
    /** Content-confidence softmax (models the trained gating). */
    Confidence,
};

/**
 * Per-shard config for a global config split across `tiles` tiles:
 * memoryRows becomes the local N/Nt. Fatal when Nt does not divide N.
 */
DncConfig shardConfigFor(const DncConfig &global, Index tiles);

/**
 * Tile t's content confidence for a read key: the best row cosine,
 * sharpened by the strength. Scored through the tile's row-norm cache
 * (no per-row Vector copies). This is the logit each DNC-D tile
 * contributes to the merge softmax — computable entirely tile-locally,
 * which is what makes the confidence merge distributable: a remote
 * worker sends back one Real per head instead of its memory contents.
 */
Real tileConfidenceScore(const MemoryUnit &tile, const Vector &key,
                         Real strength);

/**
 * Alpha bookkeeping of the confidence merge, shared by DncD and the
 * shard coordinator. Per step: selectHeads() seeds uniform alphas,
 * carries the previous step's alphas for history-dominated reads
 * (forward/backward mode has no content key to score — the tile that
 * held the anchor keeps owning the chain), and lists the heads that
 * need fresh confidence scores; applyScores() softmaxes the gathered
 * (head x tile) logits into alphas.
 */
class ConfidenceGate
{
  public:
    /** Forget all alpha history (episode boundary). */
    void reset();

    /**
     * Start a step: compute per-head default alphas and the scored-head
     * list from the (broadcast) interface's read modes.
     *
     * @return heads whose alphas await applyScores()
     */
    const std::vector<Index> &selectHeads(const InterfaceVector &iface,
                                          MergePolicy policy,
                                          Index readHeads, Index tiles);

    /**
     * Apply confidence logits for the heads selectHeads() returned.
     *
     * @param scores scoredHeads.size() x tiles, row-major
     */
    void applyScores(const std::vector<Real> &scores, Index tiles);

    /** Merge weights for the current step (per head, per tile). */
    const std::vector<std::vector<Real>> &alphas() const
    {
        return lastAlphas_;
    }

    const std::vector<Index> &scoredHeads() const { return scoredHeads_; }

  private:
    std::vector<std::vector<Real>> lastAlphas_;
    std::vector<std::vector<Real>> prevAlphas_;
    std::vector<Index> scoredHeads_;
    std::vector<Real> uniform_; ///< 1/Nt row, reused (no per-step temp)
    Vector scoreScratch_; ///< per-head logits, reused
    Vector smScratch_;    ///< softmax output, reused
};

/**
 * The Eq. 4 merge: out.readVectors[h] = sum_t alphas[h][t] * locals[t],
 * plus the concatenated global-view weightings (tile t's local
 * weighting occupies rows [t*n, (t+1)*n)) when the locals carry them.
 * Works from pointers so remote readouts merge without copies.
 */
void mergeTileReadouts(const std::vector<const MemoryReadout *> &locals,
                       const std::vector<std::vector<Real>> &alphas,
                       const DncConfig &global, Index shardRows,
                       MemoryReadout &out);

/**
 * The stepping surface of a sharded DNC memory: Nt tiles driven by
 * scripted (or controller-emitted) interface vectors with the
 * read-vector merge applied. Implemented in-process by DncD and over
 * the wire by ShardCoordinator; ShardedDnc and the workload harness
 * accept either.
 */
class TileMemory
{
  public:
    virtual ~TileMemory() = default;

    /**
     * Drive every shard with the same interface vector and merge the
     * read vectors (Fig. 8: queries broadcast; soft read/write execute
     * locally per tile; only the read-vector merge is global).
     */
    virtual MemoryReadout stepInterface(const InterfaceVector &iface) = 0;

    /**
     * Drive each shard with its own *sub interface vector* (the Fig. 8
     * arrangement: the trained LSTM emits per-tile interfaces, e.g.
     * raising the write gate on exactly the tile that should store this
     * item). Read-vector merge is identical to stepInterface().
     */
    virtual MemoryReadout
    stepInterfaces(const std::vector<InterfaceVector> &ifaces) = 0;

    /**
     * Destination-passing broadcast step for serving loops; backends
     * with reusable buffers (the shard coordinator) override this to
     * avoid per-step readout allocation. Bit-identical to
     * stepInterface().
     */
    virtual void stepInterfaceInto(const InterfaceVector &iface,
                                   MemoryReadout &out)
    {
        out = stepInterface(iface);
    }

    /** Reset all shards and merge state (episode boundary). */
    virtual void reset() = 0;

    /**
     * Episode-boundary reset that marks the start of a *new admitted
     * episode* (the serving path's admit()); identical state effect to
     * reset(). The shard coordinator maps this to the wire's Admit
     * control so workers can account served episodes.
     */
    virtual void beginEpisode() { reset(); }

    virtual Index tiles() const = 0;
    virtual const DncConfig &globalConfig() const = 0;
    virtual const DncConfig &shardConfig() const = 0;

    /** Merge weights used on the most recent step (per head, per tile). */
    virtual const std::vector<std::vector<Real>> &lastAlphas() const = 0;
};

/** Distributed DNC over Nt in-process shards. */
class DncD : public TileMemory
{
  public:
    /**
     * @param config full-size DNC shapes (memoryRows is the *global* N;
     *               config.numThreads > 1 runs the independent tiles on
     *               a persistent thread pool — numThreads == 1 is the
     *               sequential reference and bit-identical to it)
     * @param tiles  shard count Nt; must divide memoryRows
     * @param policy read-vector merge policy
     */
    DncD(const DncConfig &config, Index tiles,
         MergePolicy policy = MergePolicy::Confidence);

    MemoryReadout stepInterface(const InterfaceVector &iface) override;
    MemoryReadout
    stepInterfaces(const std::vector<InterfaceVector> &ifaces) override;

    /**
     * Destination-passing broadcast step: zero steady-state allocations
     * (the broadcast copies and the merge write into reused buffers),
     * so in-process-backed ShardedDnc lanes run the same allocation-
     * free serving loop as wire-backed ones.
     */
    void stepInterfaceInto(const InterfaceVector &iface,
                           MemoryReadout &out) override;

    /** Reset all shards. */
    void reset() override;

    Index tiles() const override { return tiles_; }
    const DncConfig &globalConfig() const override { return globalConfig_; }
    const DncConfig &shardConfig() const override { return shardConfig_; }
    MemoryUnit &shard(Index t) { return *shards_[t]; }
    const MemoryUnit &shard(Index t) const { return *shards_[t]; }

    const std::vector<std::vector<Real>> &lastAlphas() const override
    {
        return gate_.alphas();
    }

    /** Aggregate profiler across all shards. */
    KernelProfiler aggregateProfile() const;

  private:
    /** Run fn(0..tiles_-1), on the pool when one is configured. */
    void forEachTile(const std::function<void(Index)> &fn);

    /** Shared step body: tiles, gate, scores, merge into `out`. */
    void stepCore(const std::vector<InterfaceVector> &ifaces,
                  MemoryReadout &out);

    DncConfig globalConfig_;
    DncConfig shardConfig_;
    Index tiles_;
    MergePolicy policy_;
    std::vector<std::unique_ptr<MemoryUnit>> shards_;
    ConfidenceGate gate_;

    std::unique_ptr<ThreadPool> pool_;   ///< present when numThreads > 1
    std::vector<MemoryReadout> locals_;  ///< per-tile readouts, reused
    std::vector<const MemoryReadout *> localPtrs_; ///< merge view
    std::vector<InterfaceVector> broadcast_; ///< reused broadcast copies
    std::vector<Real> scoreScratch_;     ///< scoredHeads x tiles scores
};

} // namespace hima

#endif // HIMA_DNC_DNCD_H
