/**
 * @file
 * DNC-D: the distributed DNC model (Sec. 5.1, Fig. 8).
 *
 * The external memory and *all* state memories are sharded across Nt
 * tiles; each tile runs the complete soft write + soft read pipeline on
 * its local N/Nt-row shard with no inter-tile communication. The tile
 * read vectors are merged by a weighted sum
 *
 *     v_r = sum_i alpha_i * v_r_i,   alpha in [0,1]
 *
 * where the paper trains the alphas through the LSTM. At inference time
 * we model the trained gating with a content-confidence softmax: each
 * tile's alpha is proportional to exp(beta * best cosine match) between
 * the read key and that tile's memory rows — the tile that actually holds
 * the matching record dominates the merge, which is what the trained
 * gating converges to for retrieval workloads (see DESIGN.md).
 */

#ifndef HIMA_DNC_DNCD_H
#define HIMA_DNC_DNCD_H

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "dnc/dnc.h"

namespace hima {

/** How DNC-D merges the per-tile read vectors. */
enum class MergePolicy
{
    /** Uniform alphas (1/Nt each) — the untrained lower bound. */
    Uniform,
    /** Content-confidence softmax (models the trained gating). */
    Confidence,
};

/** Distributed DNC over Nt shards. */
class DncD
{
  public:
    /**
     * @param config full-size DNC shapes (memoryRows is the *global* N;
     *               config.numThreads > 1 runs the independent tiles on
     *               a persistent thread pool — numThreads == 1 is the
     *               sequential reference and bit-identical to it)
     * @param tiles  shard count Nt; must divide memoryRows
     * @param policy read-vector merge policy
     */
    DncD(const DncConfig &config, Index tiles,
         MergePolicy policy = MergePolicy::Confidence);

    /**
     * Drive every shard with the same scripted interface vector and merge
     * the read vectors. This mirrors Fig. 8: soft read/write execute
     * locally per tile; only the read-vector merge is global.
     */
    MemoryReadout stepInterface(const InterfaceVector &iface);

    /**
     * Drive each shard with its own *sub interface vector* (the Fig. 8
     * arrangement: the trained LSTM emits per-tile interfaces, e.g.
     * raising the write gate on exactly the tile that should store this
     * item). Read-vector merge is identical to stepInterface().
     */
    MemoryReadout stepInterfaces(const std::vector<InterfaceVector> &ifaces);

    /** Reset all shards. */
    void reset();

    Index tiles() const { return tiles_; }
    const DncConfig &globalConfig() const { return globalConfig_; }
    const DncConfig &shardConfig() const { return shardConfig_; }
    MemoryUnit &shard(Index t) { return *shards_[t]; }
    const MemoryUnit &shard(Index t) const { return *shards_[t]; }

    /** Merge weights used on the most recent step (per head, per tile). */
    const std::vector<std::vector<Real>> &lastAlphas() const
    {
        return lastAlphas_;
    }

    /** Aggregate profiler across all shards. */
    KernelProfiler aggregateProfile() const;

  private:
    /**
     * Tile t's content confidence for a read key: the best row cosine,
     * sharpened by the strength. Scored through the shard's row-norm
     * cache (no per-row Vector copies).
     */
    Real confidenceScore(Index tile, const Vector &key,
                         Real strength) const;

    /** Run fn(0..tiles_-1), on the pool when one is configured. */
    void forEachTile(const std::function<void(Index)> &fn);

    DncConfig globalConfig_;
    DncConfig shardConfig_;
    Index tiles_;
    MergePolicy policy_;
    std::vector<std::unique_ptr<MemoryUnit>> shards_;
    std::vector<std::vector<Real>> lastAlphas_;
    std::vector<std::vector<Real>> prevAlphas_;

    std::unique_ptr<ThreadPool> pool_;   ///< present when numThreads > 1
    std::vector<MemoryReadout> locals_;  ///< per-tile readouts, reused
    std::vector<Index> scoredHeads_;     ///< heads needing fresh alphas
    std::vector<Real> scoreScratch_;     ///< scoredHeads x tiles scores
};

} // namespace hima

#endif // HIMA_DNC_DNCD_H
