#include "dnc/lstm.h"

#include <cmath>
#include <optional>

#include "common/math_util.h"

namespace hima {

LstmCell::LstmCell(Index inputSize, Index hiddenSize, Rng &rng)
    : inputSize_(inputSize), hiddenSize_(hiddenSize),
      hidden_(hiddenSize), cell_(hiddenSize)
{
    HIMA_ASSERT(inputSize_ > 0 && hiddenSize_ > 0, "LSTM sizes");
    const Real xs = std::sqrt(2.0 / static_cast<Real>(inputSize + hiddenSize));
    for (int g = 0; g < 4; ++g) {
        wx_[g] = rng.normalMatrix(hiddenSize, inputSize, 0.0, xs);
        wh_[g] = rng.normalMatrix(hiddenSize, hiddenSize, 0.0, xs);
        bias_[g] = Vector(hiddenSize);
        gates_[g] = Vector(hiddenSize);
    }
    // Positive forget-gate bias: standard recipe for stable recurrence.
    bias_[1] = Vector(hiddenSize, 1.0);
}

const Vector &
LstmCell::step(const Vector &input, KernelProfiler *profiler)
{
    HIMA_ASSERT(input.size() == inputSize_, "LSTM input width %zu != %zu",
                input.size(), inputSize_);

    std::optional<KernelScope> scope;
    if (profiler)
        scope.emplace(*profiler, Kernel::Lstm);

    for (int g = 0; g < 4; ++g) {
        matVecInto(wx_[g], input, gates_[g]);
        matVecAccumulate(wh_[g], hidden_, gates_[g]);
        addInPlace(gates_[g], bias_[g]);
    }

    const Real *gi = gates_[0].data();
    const Real *gf = gates_[1].data();
    const Real *gc = gates_[2].data();
    const Real *go = gates_[3].data();
    Real *cell = cell_.data();
    Real *hidden = hidden_.data();
    for (Index k = 0; k < hiddenSize_; ++k) {
        const Real i = sigmoid(gi[k]);
        const Real f = sigmoid(gf[k]);
        const Real cand = std::tanh(gc[k]);
        const Real o = sigmoid(go[k]);
        cell[k] = f * cell[k] + i * cand;
        hidden[k] = o * std::tanh(cell[k]);
    }

    if (profiler) {
        auto &c = profiler->at(Kernel::Lstm);
        c.macOps += macsPerStep();
        c.specialOps += 5 * hiddenSize_; // sigmoid/tanh SFU evaluations
        c.elementOps += 4 * hiddenSize_;
    }
    return hidden_;
}

void
LstmCell::reset()
{
    hidden_.fill(0.0);
    cell_.fill(0.0);
}

std::uint64_t
LstmCell::macsPerStep() const
{
    return 4ull * hiddenSize_ * (inputSize_ + hiddenSize_ + 1);
}

} // namespace hima
