#include "dnc/lstm.h"

#include <cmath>
#include <memory>

#include "common/math_util.h"

namespace hima {

LstmCell::LstmCell(Index inputSize, Index hiddenSize, Rng &rng)
    : inputSize_(inputSize), hiddenSize_(hiddenSize),
      hidden_(hiddenSize), cell_(hiddenSize)
{
    HIMA_ASSERT(inputSize_ > 0 && hiddenSize_ > 0, "LSTM sizes");
    const Real xs = std::sqrt(2.0 / static_cast<Real>(inputSize + hiddenSize));
    for (int g = 0; g < 4; ++g) {
        wx_[g] = rng.normalMatrix(hiddenSize, inputSize, 0.0, xs);
        wh_[g] = rng.normalMatrix(hiddenSize, hiddenSize, 0.0, xs);
        bias_[g] = Vector(hiddenSize);
    }
    // Positive forget-gate bias: standard recipe for stable recurrence.
    bias_[1] = Vector(hiddenSize, 1.0);
}

Vector
LstmCell::step(const Vector &input, KernelProfiler *profiler)
{
    HIMA_ASSERT(input.size() == inputSize_, "LSTM input width %zu != %zu",
                input.size(), inputSize_);

    std::unique_ptr<KernelScope> scope;
    if (profiler)
        scope = std::make_unique<KernelScope>(*profiler, Kernel::Lstm);

    Vector gate[4];
    for (int g = 0; g < 4; ++g)
        gate[g] = add(add(matVec(wx_[g], input), matVec(wh_[g], hidden_)),
                      bias_[g]);

    const Vector i = sigmoidVec(gate[0]);
    const Vector f = sigmoidVec(gate[1]);
    const Vector cand = tanhVec(gate[2]);
    const Vector o = sigmoidVec(gate[3]);

    for (Index k = 0; k < hiddenSize_; ++k) {
        cell_[k] = f[k] * cell_[k] + i[k] * cand[k];
        hidden_[k] = o[k] * std::tanh(cell_[k]);
    }

    if (profiler) {
        auto &c = profiler->at(Kernel::Lstm);
        c.macOps += macsPerStep();
        c.specialOps += 5 * hiddenSize_; // sigmoid/tanh SFU evaluations
        c.elementOps += 4 * hiddenSize_;
    }
    return hidden_;
}

void
LstmCell::reset()
{
    hidden_.fill(0.0);
    cell_.fill(0.0);
}

std::uint64_t
LstmCell::macsPerStep() const
{
    return 4ull * hiddenSize_ * (inputSize_ + hiddenSize_ + 1);
}

} // namespace hima
