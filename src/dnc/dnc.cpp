#include "dnc/dnc.h"

namespace hima {

Dnc::Dnc(const DncConfig &config, std::uint64_t seed)
    : config_(config), rng_(seed), controller_(config, rng_),
      memory_(config),
      lastReads_(config.readHeads, Vector(config.memoryWidth))
{}

Vector
Dnc::step(const Vector &input)
{
    KernelProfiler &prof = memory_.profiler();
    const InterfaceVector iface =
        controller_.step(input, lastReads_, &prof);
    MemoryReadout readout = memory_.step(iface);
    lastReads_ = readout.readVectors;
    return controller_.output(lastReads_, &prof);
}

MemoryReadout
Dnc::stepInterface(const InterfaceVector &iface)
{
    MemoryReadout readout = memory_.step(iface);
    lastReads_ = readout.readVectors;
    return readout;
}

void
Dnc::reset()
{
    controller_.reset();
    memory_.reset();
    for (auto &rv : lastReads_)
        rv.fill(0.0);
}

} // namespace hima
