#include "dnc/dnc.h"

#include <algorithm>

namespace hima {

Dnc::Dnc(const DncConfig &config, std::uint64_t seed)
    : config_(config), rng_(seed), controller_(config, rng_),
      memory_(config),
      lastReads_(config.readHeads, Vector(config.memoryWidth))
{}

Vector
Dnc::step(const Vector &input)
{
    KernelProfiler &prof = memory_.profiler();
    const InterfaceVector &iface =
        controller_.stepInto(input, lastReads_, &prof);
    memory_.stepInto(iface, readout_);
    for (Index head = 0; head < config_.readHeads; ++head)
        std::copy(readout_.readVectors[head].begin(),
                  readout_.readVectors[head].end(),
                  lastReads_[head].begin());
    return controller_.output(lastReads_, &prof);
}

MemoryReadout
Dnc::stepInterface(const InterfaceVector &iface)
{
    MemoryReadout readout = memory_.step(iface);
    lastReads_ = readout.readVectors;
    return readout;
}

void
Dnc::reset()
{
    controller_.reset();
    memory_.reset();
    for (auto &rv : lastReads_)
        rv.fill(0.0);
}

} // namespace hima
