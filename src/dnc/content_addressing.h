/**
 * @file
 * Content-based addressing (CW.(1)-(2) / CR.(1)-(2) in Fig. 2): normalize
 * the memory rows and the key, take row-key cosine similarities, sharpen
 * by the strength and softmax into a weighting over slots.
 */

#ifndef HIMA_DNC_CONTENT_ADDRESSING_H
#define HIMA_DNC_CONTENT_ADDRESSING_H

#include <memory>

#include "approx/softmax_approx.h"
#include "dnc/kernel_profiler.h"

namespace hima {

/**
 * Content-addressing engine. Owns an optional approximate-softmax unit so
 * that one construction decision (exact vs PLA+LUT) applies to every
 * lookup, the way a synthesized SFU choice would.
 */
class ContentAddressing
{
  public:
    /**
     * @param approximate   use the PLA+LUT softmax (Sec. 5.2)
     * @param segments      PLA segment count when approximate
     * @param skipThreshold active-row threshold of the similarity scan:
     *                      rows whose cached norm is at or below it are
     *                      scored 0 without the O(W) dot (see
     *                      DncConfig::readSkipThreshold)
     * @param denseSweep    bench/test escape: never skip any row
     */
    explicit ContentAddressing(bool approximate = false, int segments = 8,
                               Real skipThreshold = 0.0,
                               bool denseSweep = false);

    /**
     * C(M, k, beta): weighting over the N rows of memory.
     *
     * Charges Normalize and Similarity kernel counts to the profiler when
     * one is supplied.
     *
     * @param memory   N x W external memory
     * @param key      width-W lookup key
     * @param strength sharpness beta >= 1
     * @param profiler optional instrumentation sink
     */
    Vector weighting(const Matrix &memory, const Vector &key, Real strength,
                     KernelProfiler *profiler = nullptr) const;

    /**
     * Destination-passing variant of weighting(): the caller owns every
     * buffer, so a steady-state call performs no heap allocation.
     *
     * When `cachedRowNorms` is non-null it must hold the L2 norm of each
     * memory row (the MemoryUnit maintains this cache across writes) and
     * the O(N*W) norm recompute is skipped; additionally the similarity
     * scan skips rows whose cached norm is at or below the construction
     * skip threshold, scoring them 0 without the O(W) dot. At the
     * default threshold of 0 only never-written rows are skipped, and
     * their score is exactly what the dense scan computes (an all-zero
     * row's dot is +0.0 and +0.0/eps sharpens to +0.0), so the result is
     * bit-identical; the softmax still runs over all N rows. Profiler
     * charges still reflect the full hardware Normalize/Similarity cost
     * (software savings land in skippedRows/skippedOps) — the cache is
     * a simulator-speed optimization, not a change to the modeled
     * architecture. With a null cache the norms are recomputed and every
     * row is scored, exactly as the reference path does.
     *
     * @param cachedRowNorms length-N row-norm cache, or nullptr
     * @param scores         length-N scratch (overwritten)
     * @param out            result weighting (resized and overwritten)
     */
    void weightingInto(const Matrix &memory, const Vector &key,
                       Real strength, const Vector *cachedRowNorms,
                       Vector &scores, Vector &out,
                       KernelProfiler *profiler = nullptr) const;

    bool approximate() const { return approx_ != nullptr; }
    Real skipThreshold() const { return skipThreshold_; }

  private:
    std::unique_ptr<SoftmaxApprox> approx_;
    Real skipThreshold_ = 0.0;
    bool denseSweep_ = false;
};

} // namespace hima

#endif // HIMA_DNC_CONTENT_ADDRESSING_H
