#include "dnc/interface.h"

#include "common/math_util.h"

namespace hima {

InterfaceVector
decodeInterface(const Vector &raw, const DncConfig &config)
{
    HIMA_ASSERT(raw.size() == config.interfaceSize(),
                "interface width %zu != expected %zu",
                raw.size(), config.interfaceSize());

    const Index w = config.memoryWidth;
    const Index r = config.readHeads;

    InterfaceVector iface;
    Index pos = 0;

    auto takeVector = [&](Index len) {
        Vector v(len);
        for (Index i = 0; i < len; ++i)
            v[i] = raw[pos + i];
        pos += len;
        return v;
    };
    auto takeScalar = [&] { return raw[pos++]; };

    iface.readKeys.reserve(r);
    for (Index i = 0; i < r; ++i)
        iface.readKeys.push_back(takeVector(w));

    iface.readStrengths.reserve(r);
    for (Index i = 0; i < r; ++i)
        iface.readStrengths.push_back(oneplus(takeScalar()));

    iface.writeKey = takeVector(w);
    iface.writeStrength = oneplus(takeScalar());
    iface.eraseVector = sigmoidVec(takeVector(w));
    iface.writeVector = takeVector(w);

    iface.freeGates.reserve(r);
    for (Index i = 0; i < r; ++i)
        iface.freeGates.push_back(sigmoid(takeScalar()));

    iface.allocationGate = sigmoid(takeScalar());
    iface.writeGate = sigmoid(takeScalar());

    iface.readModes.reserve(r);
    for (Index i = 0; i < r; ++i) {
        Vector mode = softmax(takeVector(3));
        iface.readModes.push_back({mode[0], mode[1], mode[2]});
    }

    HIMA_ASSERT(pos == raw.size(), "interface decode consumed %zu of %zu",
                pos, raw.size());
    return iface;
}

void
validateInterface(const InterfaceVector &iface, const DncConfig &config)
{
    const Index w = config.memoryWidth;
    const Index r = config.readHeads;

    HIMA_ASSERT(iface.readKeys.size() == r, "expected %zu read keys", r);
    for (const auto &key : iface.readKeys)
        HIMA_ASSERT(key.size() == w, "read key width %zu != %zu",
                    key.size(), w);
    HIMA_ASSERT(iface.readStrengths.size() == r, "read strengths arity");
    HIMA_ASSERT(iface.writeKey.size() == w, "write key width");
    HIMA_ASSERT(iface.eraseVector.size() == w, "erase width");
    HIMA_ASSERT(iface.writeVector.size() == w, "write vector width");
    HIMA_ASSERT(iface.freeGates.size() == r, "free gates arity");
    HIMA_ASSERT(iface.readModes.size() == r, "read modes arity");
    for (Real s : iface.readStrengths)
        HIMA_ASSERT(s >= 1.0, "read strength %f < 1", s);
    HIMA_ASSERT(iface.writeStrength >= 1.0, "write strength %f < 1",
                iface.writeStrength);
    for (Real g : iface.freeGates)
        HIMA_ASSERT(g >= 0.0 && g <= 1.0, "free gate %f outside [0,1]", g);
    HIMA_ASSERT(iface.allocationGate >= 0.0 && iface.allocationGate <= 1.0,
                "allocation gate range");
    HIMA_ASSERT(iface.writeGate >= 0.0 && iface.writeGate <= 1.0,
                "write gate range");
    for (const auto &m : iface.readModes) {
        HIMA_ASSERT(m.backward >= 0.0 && m.content >= 0.0 && m.forward >= 0.0,
                    "read mode negative");
        HIMA_ASSERT(nearlyEqual(m.backward + m.content + m.forward, 1.0,
                                1e-6),
                    "read mode not on simplex");
    }
}

} // namespace hima
