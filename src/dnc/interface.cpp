#include "dnc/interface.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace hima {

InterfaceVector
decodeInterface(const Vector &raw, const DncConfig &config)
{
    InterfaceVector iface;
    decodeInterfaceInto(raw, config, iface);
    return iface;
}

void
decodeInterfaceInto(const Vector &raw, const DncConfig &config,
                    InterfaceVector &out)
{
    HIMA_ASSERT(raw.size() == config.interfaceSize(),
                "interface width %zu != expected %zu",
                raw.size(), config.interfaceSize());

    const Index w = config.memoryWidth;
    const Index r = config.readHeads;

    Index pos = 0;

    auto takeVectorInto = [&](Index len, Vector &v) {
        v.resize(len);
        for (Index i = 0; i < len; ++i)
            v[i] = raw[pos + i];
        pos += len;
    };
    auto takeScalar = [&] { return raw[pos++]; };

    out.readKeys.resize(r);
    for (Index i = 0; i < r; ++i)
        takeVectorInto(w, out.readKeys[i]);

    out.readStrengths.resize(r);
    for (Index i = 0; i < r; ++i)
        out.readStrengths[i] = oneplus(takeScalar());

    takeVectorInto(w, out.writeKey);
    out.writeStrength = oneplus(takeScalar());
    takeVectorInto(w, out.eraseVector);
    for (Index i = 0; i < w; ++i)
        out.eraseVector[i] = sigmoid(out.eraseVector[i]);
    takeVectorInto(w, out.writeVector);

    out.freeGates.resize(r);
    for (Index i = 0; i < r; ++i)
        out.freeGates[i] = sigmoid(takeScalar());

    out.allocationGate = sigmoid(takeScalar());
    out.writeGate = sigmoid(takeScalar());

    out.readModes.resize(r);
    for (Index i = 0; i < r; ++i) {
        // Inline 3-way softmax, arithmetic-identical to softmaxInto().
        const Real a = takeScalar();
        const Real b = takeScalar();
        const Real c = takeScalar();
        const Real m = std::max(a, std::max(b, c));
        Real ea = std::exp(a - m);
        Real denom = ea;
        Real eb = std::exp(b - m);
        denom += eb;
        Real ec = std::exp(c - m);
        denom += ec;
        out.readModes[i] = {ea / denom, eb / denom, ec / denom};
    }

    HIMA_ASSERT(pos == raw.size(), "interface decode consumed %zu of %zu",
                pos, raw.size());
}

void
validateInterface(const InterfaceVector &iface, const DncConfig &config)
{
    const Index w = config.memoryWidth;
    const Index r = config.readHeads;

    HIMA_ASSERT(iface.readKeys.size() == r, "expected %zu read keys", r);
    for (const auto &key : iface.readKeys)
        HIMA_ASSERT(key.size() == w, "read key width %zu != %zu",
                    key.size(), w);
    HIMA_ASSERT(iface.readStrengths.size() == r, "read strengths arity");
    HIMA_ASSERT(iface.writeKey.size() == w, "write key width");
    HIMA_ASSERT(iface.eraseVector.size() == w, "erase width");
    HIMA_ASSERT(iface.writeVector.size() == w, "write vector width");
    HIMA_ASSERT(iface.freeGates.size() == r, "free gates arity");
    HIMA_ASSERT(iface.readModes.size() == r, "read modes arity");
    for (Real s : iface.readStrengths)
        HIMA_ASSERT(s >= 1.0, "read strength %f < 1", s);
    HIMA_ASSERT(iface.writeStrength >= 1.0, "write strength %f < 1",
                iface.writeStrength);
    for (Real g : iface.freeGates)
        HIMA_ASSERT(g >= 0.0 && g <= 1.0, "free gate %f outside [0,1]", g);
    HIMA_ASSERT(iface.allocationGate >= 0.0 && iface.allocationGate <= 1.0,
                "allocation gate range");
    HIMA_ASSERT(iface.writeGate >= 0.0 && iface.writeGate <= 1.0,
                "write gate range");
    for (const auto &m : iface.readModes) {
        HIMA_ASSERT(m.backward >= 0.0 && m.content >= 0.0 && m.forward >= 0.0,
                    "read mode negative");
        HIMA_ASSERT(nearlyEqual(m.backward + m.content + m.forward, 1.0,
                                1e-6),
                    "read mode not on simplex");
    }
}

} // namespace hima
