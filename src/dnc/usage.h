/**
 * @file
 * Usage tracking (HW.(1)-(2) in Fig. 2): the retention vector derived from
 * the free gates and previous read weightings, and the usage-vector update
 * driven by the previous write weighting.
 */

#ifndef HIMA_DNC_USAGE_H
#define HIMA_DNC_USAGE_H

#include <vector>

#include "common/tensor.h"
#include "dnc/kernel_profiler.h"

namespace hima {

/**
 * HW.(1) Retention: psi[i] = prod_r (1 - freeGate[r] * readWeight[r][i]).
 *
 * A slot is retained unless every read head that touched it last step
 * declared it free.
 *
 * @param freeGates    R free gates in [0, 1]
 * @param readWeights  R previous read weightings over N slots
 */
Vector retentionVector(const std::vector<Real> &freeGates,
                       const std::vector<Vector> &readWeights,
                       KernelProfiler *profiler = nullptr);

/** Destination-passing retention: psi is resized and overwritten. */
void retentionInto(const std::vector<Real> &freeGates,
                   const std::vector<Vector> &readWeights, Vector &psi,
                   KernelProfiler *profiler = nullptr);

/**
 * HW.(2) Usage update: u <- (u + w - u .* w) .* psi, where w is the
 * previous write weighting. Every entry stays in [0, 1] when the inputs
 * do (tested as an invariant).
 */
Vector updateUsage(const Vector &usage, const Vector &prevWriteWeighting,
                   const Vector &retention,
                   KernelProfiler *profiler = nullptr);

/** In-place usage update (element-wise, so aliasing is trivially safe). */
void updateUsageInPlace(Vector &usage, const Vector &prevWriteWeighting,
                        const Vector &retention,
                        KernelProfiler *profiler = nullptr);

} // namespace hima

#endif // HIMA_DNC_USAGE_H
