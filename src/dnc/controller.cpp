#include "dnc/controller.h"

#include <cmath>
#include <optional>

namespace hima {

Controller::Controller(const DncConfig &config, Rng &rng)
    : config_(config),
      lstm_(config.inputSize + config.readHeads * config.memoryWidth,
            config.controllerSize, rng)
{
    const Real hs = std::sqrt(1.0 / static_cast<Real>(config.controllerSize));
    interfaceHead_ =
        rng.normalMatrix(config.interfaceSize(), config.controllerSize,
                         0.0, hs);
    outputHead_ =
        rng.normalMatrix(config.outputSize, config.controllerSize, 0.0, hs);
    const Index readWidth = config.readHeads * config.memoryWidth;
    readHead_ = rng.normalMatrix(config.outputSize, readWidth, 0.0,
                                 std::sqrt(1.0 / static_cast<Real>(readWidth)));
}

void
Controller::concatInput(const Vector &input,
                        const std::vector<Vector> &readVectors,
                        Vector &feed) const
{
    HIMA_ASSERT(input.size() == config_.inputSize, "controller input width");
    HIMA_ASSERT(readVectors.size() == config_.readHeads,
                "read vector arity %zu != %zu",
                readVectors.size(), config_.readHeads);

    feed.resize(config_.inputSize +
                config_.readHeads * config_.memoryWidth);
    Index pos = 0;
    for (Index i = 0; i < input.size(); ++i)
        feed[pos++] = input[i];
    for (const Vector &rv : readVectors) {
        HIMA_ASSERT(rv.size() == config_.memoryWidth, "read vector width");
        for (Index i = 0; i < rv.size(); ++i)
            feed[pos++] = rv[i];
    }
}

void
Controller::concatReads(const std::vector<Vector> &readVectors,
                        Vector &reads) const
{
    HIMA_ASSERT(readVectors.size() == config_.readHeads, "read arity");
    reads.resize(config_.readHeads * config_.memoryWidth);
    Index pos = 0;
    for (const Vector &rv : readVectors)
        for (Index i = 0; i < rv.size(); ++i)
            reads[pos++] = rv[i];
}

InterfaceVector
Controller::step(const Vector &input,
                 const std::vector<Vector> &readVectors,
                 KernelProfiler *profiler)
{
    return stepInto(input, readVectors, profiler);
}

const InterfaceVector &
Controller::stepInto(const Vector &input,
                     const std::vector<Vector> &readVectors,
                     KernelProfiler *profiler)
{
    concatInput(input, readVectors, feed_);
    const Vector &hidden = lstm_.step(feed_, profiler);

    std::optional<KernelScope> scope;
    if (profiler)
        scope.emplace(*profiler, Kernel::Lstm);
    matVecInto(interfaceHead_, hidden, rawIface_);
    if (profiler) {
        auto &c = profiler->at(Kernel::Lstm);
        c.macOps += static_cast<std::uint64_t>(interfaceHead_.rows()) *
                    interfaceHead_.cols();
    }
    decodeInterfaceInto(rawIface_, config_, iface_);
    return iface_;
}

Vector
Controller::output(const std::vector<Vector> &readVectors,
                   KernelProfiler *profiler) const
{
    Vector y;
    outputInto(readVectors, y, profiler);
    return y;
}

void
Controller::outputInto(const std::vector<Vector> &readVectors, Vector &y,
                       KernelProfiler *profiler) const
{
    concatReads(readVectors, reads_);

    std::optional<KernelScope> scope;
    if (profiler)
        scope.emplace(*profiler, Kernel::Lstm);
    matVecInto(outputHead_, lstm_.hidden(), y);
    matVecAccumulate(readHead_, reads_, y);
    if (profiler) {
        auto &c = profiler->at(Kernel::Lstm);
        c.macOps += static_cast<std::uint64_t>(outputHead_.rows()) *
                        outputHead_.cols() +
                    static_cast<std::uint64_t>(readHead_.rows()) *
                        readHead_.cols();
    }
}

void
Controller::reset()
{
    lstm_.reset();
}

} // namespace hima
