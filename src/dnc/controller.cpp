#include "dnc/controller.h"

#include <cmath>
#include <memory>

namespace hima {

Controller::Controller(const DncConfig &config, Rng &rng)
    : config_(config),
      lstm_(config.inputSize + config.readHeads * config.memoryWidth,
            config.controllerSize, rng)
{
    const Real hs = std::sqrt(1.0 / static_cast<Real>(config.controllerSize));
    interfaceHead_ =
        rng.normalMatrix(config.interfaceSize(), config.controllerSize,
                         0.0, hs);
    outputHead_ =
        rng.normalMatrix(config.outputSize, config.controllerSize, 0.0, hs);
    const Index readWidth = config.readHeads * config.memoryWidth;
    readHead_ = rng.normalMatrix(config.outputSize, readWidth, 0.0,
                                 std::sqrt(1.0 / static_cast<Real>(readWidth)));
}

Vector
Controller::concatInput(const Vector &input,
                        const std::vector<Vector> &readVectors) const
{
    HIMA_ASSERT(input.size() == config_.inputSize, "controller input width");
    HIMA_ASSERT(readVectors.size() == config_.readHeads,
                "read vector arity %zu != %zu",
                readVectors.size(), config_.readHeads);

    Vector feed(config_.inputSize +
                config_.readHeads * config_.memoryWidth);
    Index pos = 0;
    for (Index i = 0; i < input.size(); ++i)
        feed[pos++] = input[i];
    for (const Vector &rv : readVectors) {
        HIMA_ASSERT(rv.size() == config_.memoryWidth, "read vector width");
        for (Index i = 0; i < rv.size(); ++i)
            feed[pos++] = rv[i];
    }
    return feed;
}

InterfaceVector
Controller::step(const Vector &input,
                 const std::vector<Vector> &readVectors,
                 KernelProfiler *profiler)
{
    const Vector hidden = lstm_.step(concatInput(input, readVectors),
                                     profiler);

    std::unique_ptr<KernelScope> scope;
    if (profiler)
        scope = std::make_unique<KernelScope>(*profiler, Kernel::Lstm);
    const Vector raw = matVec(interfaceHead_, hidden);
    if (profiler) {
        auto &c = profiler->at(Kernel::Lstm);
        c.macOps += static_cast<std::uint64_t>(interfaceHead_.rows()) *
                    interfaceHead_.cols();
    }
    return decodeInterface(raw, config_);
}

Vector
Controller::output(const std::vector<Vector> &readVectors,
                   KernelProfiler *profiler) const
{
    HIMA_ASSERT(readVectors.size() == config_.readHeads, "read arity");
    Vector reads(config_.readHeads * config_.memoryWidth);
    Index pos = 0;
    for (const Vector &rv : readVectors)
        for (Index i = 0; i < rv.size(); ++i)
            reads[pos++] = rv[i];

    std::unique_ptr<KernelScope> scope;
    if (profiler)
        scope = std::make_unique<KernelScope>(*profiler, Kernel::Lstm);
    Vector y = add(matVec(outputHead_, lstm_.hidden()),
                   matVec(readHead_, reads));
    if (profiler) {
        auto &c = profiler->at(Kernel::Lstm);
        c.macOps += static_cast<std::uint64_t>(outputHead_.rows()) *
                        outputHead_.cols() +
                    static_cast<std::uint64_t>(readHead_.rows()) *
                        readHead_.cols();
    }
    return y;
}

void
Controller::reset()
{
    lstm_.reset();
}

} // namespace hima
