/**
 * @file
 * The complete DNC: LSTM controller + memory unit (Fig. 1 right).
 *
 * This is the functional reference model the paper verifies its RTL
 * against ("we verified the designs against a functional model of DNC ...
 * at kernel level as well as system level", Sec. 7). The accelerator
 * timing model in src/arch replays this model's measured kernel profile.
 */

#ifndef HIMA_DNC_DNC_H
#define HIMA_DNC_DNC_H

#include "dnc/controller.h"
#include "dnc/memory_unit.h"

namespace hima {

/** One full DNC instance. */
class Dnc
{
  public:
    /**
     * @param config shapes and feature flags
     * @param seed   deterministic weight-initialization seed
     */
    explicit Dnc(const DncConfig &config, std::uint64_t seed = 1);

    /**
     * One inference step: controller -> interface -> memory unit ->
     * output head.
     *
     * @param input width-inputSize task token
     * @return width-outputSize model output
     */
    Vector step(const Vector &input);

    /**
     * Drive the memory unit directly with a scripted interface vector,
     * bypassing the controller. The workload harness uses this to run
     * write/read scripts with known ground truth (see DESIGN.md on the
     * bAbI substitution).
     */
    MemoryReadout stepInterface(const InterfaceVector &iface);

    /** Reset controller and memory state (episode boundary). */
    void reset();

    const DncConfig &config() const { return config_; }
    MemoryUnit &memory() { return memory_; }
    const MemoryUnit &memory() const { return memory_; }
    Controller &controller() { return controller_; }

    /** Merged profiler view (controller + memory unit kernels). */
    const KernelProfiler &profiler() const { return memory_.profiler(); }
    KernelProfiler &profiler() { return memory_.profiler(); }

    /** Read vectors from the previous step (width W each). */
    const std::vector<Vector> &lastReads() const { return lastReads_; }

  private:
    DncConfig config_;
    Rng rng_;
    Controller controller_;
    MemoryUnit memory_;
    std::vector<Vector> lastReads_;
    MemoryReadout readout_; ///< reused across step() calls (no realloc)
};

} // namespace hima

#endif // HIMA_DNC_DNC_H
