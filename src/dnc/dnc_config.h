/**
 * @file
 * Configuration record shared by the DNC, NTM and DNC-D models.
 */

#ifndef HIMA_DNC_DNC_CONFIG_H
#define HIMA_DNC_DNC_CONFIG_H

#include "common/tensor.h"

namespace hima {

/**
 * Shape and feature knobs of one DNC instance. Defaults follow the
 * paper's evaluation point: external memory N x W = 1024 x 64 with
 * R = 4 read heads and a 1-layer LSTM of size 256 (Fig. 4 caption).
 */
struct DncConfig
{
    /** External memory rows (slots). */
    Index memoryRows = 1024;
    /** External memory columns (word width). */
    Index memoryWidth = 64;
    /** Parallel read heads. */
    Index readHeads = 4;
    /** LSTM hidden size. */
    Index controllerSize = 256;
    /** Model input width (task token embedding). */
    Index inputSize = 64;
    /** Model output width. */
    Index outputSize = 64;

    /** Use the PLA+LUT softmax instead of exact softmax (Sec. 5.2). */
    bool approximateSoftmax = false;
    /** PLA segment count when approximateSoftmax is set. */
    int softmaxSegments = 8;

    /**
     * Usage-skimming rate K in [0, 1): fraction of usage entries dropped
     * from the sort and allocation (Sec. 5.2). Zero disables skimming.
     */
    Real skimRate = 0.0;

    /** Quantize memory and weightings through the Q16.16 datapath. */
    bool fixedPoint = false;

    /**
     * Software worker threads for the independent DNC-D tiles. The
     * default of 1 executes tiles sequentially and is bit-identical to
     * the reference implementation; higher values run tiles on a thread
     * pool (the merge stays deterministic either way).
     */
    Index numThreads = 1;

    /**
     * Lanes of the batched serving engine (src/serve/BatchedDnc): the
     * number of independent DNC instances stepped together per process,
     * sharing controller weights but owning per-lane state. 1 means
     * unbatched; the engine is bit-identical per lane to batchSize
     * sequential Dnc runs at any value.
     */
    Index batchSize = 1;

    /**
     * Lanes per worker round trip of the pipelined sharded serving
     * engine (src/shard/sharded_dnc.h PipelinedShardedLaneEngine): the
     * active lanes are stepped in batches of this many per LaneStep
     * frame, and batch b's controller compute overlaps batch b-1's
     * in-flight tile round trips. 0 (default) sends all active lanes in
     * one frame — maximal syscall amortization, no overlap. Results are
     * bit-identical per lane at any value.
     */
    Index shardLanesPerBatch = 0;

    /**
     * Checkpoint cadence of the sharded serving stack: every this many
     * coordinator steps (per lane for the pipelined group), the
     * coordinator pulls a CheckpointState snapshot of every worker's
     * tiles and trims its replay log to the window since that snapshot.
     * On a worker death it then respawns a replacement, restores the
     * snapshot, and replays the logged window — bit-identical to an
     * undisturbed run. 0 (default) disables checkpointing: a lost
     * worker stays fatal, exactly the pre-v3 behavior.
     */
    Index shardCheckpointIntervalSteps = 0;

    /**
     * Receive/send bound (milliseconds) on every shard channel the
     * cluster harness builds: a dead or wedged worker surfaces as a
     * recoverable timeout after this long instead of hanging the
     * coordinator. Must be >= 1 — a zero timeout would reach the
     * transports as "block forever" (the POSIX zero-timeval meaning),
     * which is never what a serving deployment wants.
     */
    Index shardRecvTimeoutMs = 30000;

    /**
     * Pending-request queue bound of the dynamic-batching router
     * (src/serve/router.h): submissions beyond this many queued-but-
     * unadmitted requests are rejected (back-pressure). Must be >= 1.
     */
    Index routerQueueCapacity = 256;

    /**
     * Cap on concurrently active router lanes. 0 (default) means "use
     * batchSize" — the router may fill every engine slot; a smaller
     * value reserves headroom (e.g. for latency isolation experiments).
     * Must not exceed batchSize.
     */
    Index routerMaxActiveLanes = 0;

    /**
     * Simulator-speed knob: memory-write rows whose write weight is at
     * or below this threshold are left untouched, making the write and
     * the row-norm maintenance O(touched * W) instead of O(N * W). Zero
     * (default) skips only exactly-zero weights and matches the
     * reference DNC bit-for-bit; small positive values (~1e-12..1e-9)
     * trade exactness for speed in the spirit of the paper's usage
     * skimming. Hardware cost charges are unaffected.
     */
    Real writeSkipThreshold = 0.0;

    /**
     * Active-row threshold of the sparse linkage sweep: a linkage row is
     * swept only while its cached absolute row mass (or its current
     * write weight) exceeds this value; other rows are left untouched
     * and contribute nothing to the forward/backward weightings. Zero
     * (default) skips only rows that are exactly zero — slots never
     * written since the episode boundary — and is bit-identical to the
     * dense O(N^2) sweep; small positive values (~1e-12..1e-6) also skim
     * rows whose linkage mass has decayed to noise, trading exactness
     * for speed in the spirit of the paper's Sec. 5.2 usage skimming.
     * Hardware cost charges are unaffected (the skipped work lands in
     * the profiler's skippedRows/skippedOps columns instead).
     */
    Real linkageSkipThreshold = 0.0;

    /**
     * Active-row threshold of the sparse read stage: content addressing
     * skips the cosine dot for memory rows whose cached L2 norm is at or
     * below this value (scoring them exactly 0 before the softmax), the
     * memory-read mat-T-vec skips their rows, and the DNC-D confidence
     * scorer skips them tile-locally. Zero (default) skips only rows
     * whose norm is exactly zero — rows never written since the episode
     * boundary, whose cosine score and read contribution are exactly
     * determined — and is bit-identical to the dense read stage; small
     * positive values additionally skim rows whose content has been
     * erased to noise. Hardware cost charges are unaffected (skipped
     * work lands in skippedRows/skippedOps).
     */
    Real readSkipThreshold = 0.0;

    /**
     * Runtime metrics toggle (src/obs): counters/gauges/histograms are
     * recorded while true. Off, every metric write is one predictable
     * branch; compiled with HIMA_TELEMETRY=OFF the writes vanish
     * entirely and this knob is ignored.
     */
    bool telemetryMetrics = true;

    /**
     * Phase-trace toggle (src/obs): record begin/end span events from
     * the Router/shard/transport phases into per-thread rings,
     * exportable as Chrome trace JSON (Perfetto). Defaults off —
     * tracing costs a clock read per span edge, which is measurable on
     * nanosecond-scale phases.
     */
    bool telemetryTracing = false;

    /**
     * Per-thread trace ring capacity in events; a thread's oldest
     * events are overwritten once it has emitted this many. Applies to
     * rings created after obs::applyTelemetryConfig runs. Must be >= 1.
     */
    Index telemetryTraceCapacity = 4096;

    /**
     * Bench/test escape hatch: force the dense full-N sweeps everywhere
     * the active-set machinery would skip work — the linkage update and
     * forward/backward reads, the content-addressing similarity scan,
     * the memory-read mat-T-vec, the DNC-D confidence scorer, and the
     * sparse checkpoint encoder (frames are emitted dense). The
     * cross-check gates and the sparsity sweeps in bench_hot_path /
     * bench_shard use it as the reference/baseline; it is never what a
     * serving deployment wants.
     */
    bool linkageDenseSweep = false;

    /** Interface vector width for these shapes (DNC paper layout). */
    Index
    interfaceSize() const
    {
        // R read keys (R*W) + R read strengths + write key (W) + write
        // strength + erase (W) + write vector (W) + R free gates +
        // allocation gate + write gate + R read modes of 3.
        return readHeads * memoryWidth + 3 * memoryWidth + 5 * readHeads + 3;
    }

    /** Sanity-check the shape parameters; fatal on user error. */
    void
    validate() const
    {
        if (memoryRows == 0 || memoryWidth == 0 || readHeads == 0)
            HIMA_FATAL("DncConfig: zero-sized memory or read heads");
        if (memoryRows <= memoryWidth) {
            // Sharded (DNC-D) configs routinely have small local N;
            // nag once, not per shard.
            static bool warned = false;
            if (!warned) {
                warned = true;
                HIMA_WARN("DncConfig: paper assumes N > W (got N=%zu, "
                          "W=%zu); further occurrences suppressed",
                          memoryRows, memoryWidth);
            }
        }
        if (skimRate < 0.0 || skimRate >= 1.0)
            HIMA_FATAL("DncConfig: skim rate %f outside [0, 1)", skimRate);
        if (numThreads == 0)
            HIMA_FATAL("DncConfig: numThreads must be >= 1");
        if (batchSize == 0)
            HIMA_FATAL("DncConfig: batchSize must be >= 1");
        if (shardRecvTimeoutMs == 0)
            HIMA_FATAL("DncConfig: shardRecvTimeoutMs must be >= 1 (a "
                       "zero timeout means \"block forever\" to POSIX)");
        if (routerQueueCapacity == 0)
            HIMA_FATAL("DncConfig: routerQueueCapacity must be >= 1");
        if (routerMaxActiveLanes > batchSize)
            HIMA_FATAL("DncConfig: routerMaxActiveLanes %zu exceeds "
                       "batchSize %zu (0 means \"use batchSize\")",
                       routerMaxActiveLanes, batchSize);
        // The skip thresholds are written as negated conjunctions so a
        // NaN (which compares false both ways) is rejected rather than
        // slipping past a `< 0.0 || >= 1.0` pair of checks.
        if (!(writeSkipThreshold >= 0.0 && writeSkipThreshold < 1.0))
            HIMA_FATAL("DncConfig: write skip threshold %f outside [0, 1)",
                       writeSkipThreshold);
        if (!(linkageSkipThreshold >= 0.0 && linkageSkipThreshold < 1.0))
            HIMA_FATAL("DncConfig: linkage skip threshold %f outside [0, 1)",
                       linkageSkipThreshold);
        if (!(readSkipThreshold >= 0.0 && readSkipThreshold < 1.0))
            HIMA_FATAL("DncConfig: read skip threshold %f outside [0, 1)",
                       readSkipThreshold);
        if (telemetryTraceCapacity == 0)
            HIMA_FATAL("DncConfig: telemetryTraceCapacity must be >= 1");
        if (linkageDenseSweep && linkageSkipThreshold > 0.0)
            HIMA_FATAL("DncConfig: linkageDenseSweep ignores row activity; "
                       "combining it with a nonzero linkageSkipThreshold "
                       "(%f) is contradictory", linkageSkipThreshold);
        if (linkageDenseSweep && readSkipThreshold > 0.0)
            HIMA_FATAL("DncConfig: linkageDenseSweep forces the dense read "
                       "stage; combining it with a nonzero "
                       "readSkipThreshold (%f) is contradictory",
                       readSkipThreshold);
    }
};

} // namespace hima

#endif // HIMA_DNC_DNC_CONFIG_H
