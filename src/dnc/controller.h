/**
 * @file
 * The DNC controller: an LSTM fed with [input; previous read vectors],
 * plus the linear heads that emit the interface vector and the model
 * output (output = W_y h + W_r [read vectors], per the DNC paper).
 */

#ifndef HIMA_DNC_CONTROLLER_H
#define HIMA_DNC_CONTROLLER_H

#include <vector>

#include "dnc/dnc_config.h"
#include "dnc/interface.h"
#include "dnc/lstm.h"

namespace hima {

/** LSTM controller with interface and output projection heads. */
class Controller
{
  public:
    Controller(const DncConfig &config, Rng &rng);

    /**
     * One controller step.
     *
     * @param input       task input of width config.inputSize
     * @param readVectors previous step's R read vectors
     * @param profiler    optional instrumentation sink
     * @return the decoded interface vector for the memory unit
     */
    InterfaceVector step(const Vector &input,
                         const std::vector<Vector> &readVectors,
                         KernelProfiler *profiler = nullptr);

    /**
     * Model output for the *current* step: y = W_y h + W_r [reads]. Call
     * after the memory unit has produced this step's read vectors.
     */
    Vector output(const std::vector<Vector> &readVectors,
                  KernelProfiler *profiler = nullptr) const;

    void reset();

    const LstmCell &lstm() const { return lstm_; }

  private:
    /** Concatenate input and read vectors into the LSTM feed. */
    Vector concatInput(const Vector &input,
                       const std::vector<Vector> &readVectors) const;

    DncConfig config_;
    LstmCell lstm_;
    Matrix interfaceHead_; ///< hidden -> interface emission
    Matrix outputHead_;    ///< hidden -> output
    Matrix readHead_;      ///< concatenated reads -> output
};

} // namespace hima

#endif // HIMA_DNC_CONTROLLER_H
