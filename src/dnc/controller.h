/**
 * @file
 * The DNC controller: an LSTM fed with [input; previous read vectors],
 * plus the linear heads that emit the interface vector and the model
 * output (output = W_y h + W_r [read vectors], per the DNC paper).
 */

#ifndef HIMA_DNC_CONTROLLER_H
#define HIMA_DNC_CONTROLLER_H

#include <vector>

#include "dnc/dnc_config.h"
#include "dnc/interface.h"
#include "dnc/lstm.h"

namespace hima {

/** LSTM controller with interface and output projection heads. */
class Controller
{
  public:
    Controller(const DncConfig &config, Rng &rng);

    /**
     * One controller step.
     *
     * @param input       task input of width config.inputSize
     * @param readVectors previous step's R read vectors
     * @param profiler    optional instrumentation sink
     * @return the decoded interface vector for the memory unit
     */
    InterfaceVector step(const Vector &input,
                         const std::vector<Vector> &readVectors,
                         KernelProfiler *profiler = nullptr);

    /**
     * Allocation-free step: identical numerics to step(), but the
     * decoded interface lives in member storage (valid until the next
     * stepInto/step call) and all temporaries reuse member scratch.
     */
    const InterfaceVector &stepInto(const Vector &input,
                                    const std::vector<Vector> &readVectors,
                                    KernelProfiler *profiler = nullptr);

    /**
     * Model output for the *current* step: y = W_y h + W_r [reads]. Call
     * after the memory unit has produced this step's read vectors.
     */
    Vector output(const std::vector<Vector> &readVectors,
                  KernelProfiler *profiler = nullptr) const;

    /** Destination-passing output (y resized and overwritten). */
    void outputInto(const std::vector<Vector> &readVectors, Vector &y,
                    KernelProfiler *profiler = nullptr) const;

    void reset();

    const LstmCell &lstm() const { return lstm_; }

    // Projection-head weights, exposed so the batched serving engine can
    // stream one weight set across all lanes (weights are shared in a
    // serving deployment; only the recurrent state is per lane).
    const Matrix &interfaceHead() const { return interfaceHead_; }
    const Matrix &outputHead() const { return outputHead_; }
    const Matrix &readHead() const { return readHead_; }

  private:
    /** Concatenate input and read vectors into the LSTM feed. */
    void concatInput(const Vector &input,
                     const std::vector<Vector> &readVectors,
                     Vector &feed) const;

    /** Concatenate the R read vectors into one readWidth vector. */
    void concatReads(const std::vector<Vector> &readVectors,
                     Vector &reads) const;

    DncConfig config_;
    LstmCell lstm_;
    Matrix interfaceHead_; ///< hidden -> interface emission
    Matrix outputHead_;    ///< hidden -> output
    Matrix readHead_;      ///< concatenated reads -> output

    Vector feed_;           ///< [input; reads] scratch
    Vector rawIface_;       ///< pre-constraint interface emission scratch
    mutable Vector reads_;  ///< concatenated-reads scratch for output()
    InterfaceVector iface_; ///< decoded interface storage for stepInto()
};

} // namespace hima

#endif // HIMA_DNC_CONTROLLER_H
