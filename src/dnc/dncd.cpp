#include "dnc/dncd.h"

#include <cmath>

#include "common/math_util.h"

namespace hima {

DncD::DncD(const DncConfig &config, Index tiles, MergePolicy policy)
    : globalConfig_(config), shardConfig_(config), tiles_(tiles),
      policy_(policy)
{
    HIMA_ASSERT(tiles_ >= 1, "DNC-D needs at least one tile");
    HIMA_ASSERT(config.memoryRows % tiles_ == 0,
                "N=%zu not divisible by Nt=%zu", config.memoryRows, tiles_);
    shardConfig_.memoryRows = config.memoryRows / tiles_;

    shards_.reserve(tiles_);
    for (Index t = 0; t < tiles_; ++t)
        shards_.push_back(std::make_unique<MemoryUnit>(shardConfig_));
}

std::vector<Real>
DncD::mergeWeights(const Vector &key, Real strength) const
{
    std::vector<Real> alphas(tiles_, 1.0 / static_cast<Real>(tiles_));
    if (policy_ == MergePolicy::Uniform)
        return alphas;

    // Confidence gating: each tile scores its best cosine match against
    // the read key; a softmax over tiles yields the alphas.
    Vector scores(tiles_);
    for (Index t = 0; t < tiles_; ++t) {
        const Matrix &mem = shards_[t]->memory();
        Real best = -1.0;
        for (Index i = 0; i < mem.rows(); ++i)
            best = std::max(best, cosineSimilarity(mem.row(i), key));
        scores[t] = strength * best;
    }
    const Vector sm = softmax(scores);
    for (Index t = 0; t < tiles_; ++t)
        alphas[t] = sm[t];
    return alphas;
}

MemoryReadout
DncD::stepInterface(const InterfaceVector &iface)
{
    return stepInterfaces(
        std::vector<InterfaceVector>(tiles_, iface));
}

MemoryReadout
DncD::stepInterfaces(const std::vector<InterfaceVector> &ifaces)
{
    HIMA_ASSERT(ifaces.size() == tiles_, "need one interface per tile");
    const Index w = globalConfig_.memoryWidth;
    const Index r = globalConfig_.readHeads;

    // Local soft write + soft read on every shard (parallel on hardware).
    std::vector<MemoryReadout> locals;
    locals.reserve(tiles_);
    for (Index t = 0; t < tiles_; ++t)
        locals.push_back(shards_[t]->step(ifaces[t]));

    // Read-vector merge: v_r = sum_t alpha_t v_r_t (Eq. 4).
    MemoryReadout merged;
    merged.readVectors.assign(r, Vector(w));
    prevAlphas_ = lastAlphas_;
    lastAlphas_.assign(r, std::vector<Real>(tiles_, 0.0));
    for (Index head = 0; head < r; ++head) {
        // Read keys are shared across tiles (queries broadcast); use
        // tile 0's copy for the confidence gating. For history-dominated
        // reads (forward/backward mode) there is no content key to score
        // — the trained gate carries the previous step's attention, so
        // we reuse the last alphas (the tile that held the anchor keeps
        // owning the chain).
        std::vector<Real> alphas;
        const ReadMode &mode = ifaces[0].readModes[head];
        if (mode.content < 0.5 && head < prevAlphas_.size() &&
            !prevAlphas_[head].empty()) {
            alphas = prevAlphas_[head];
        } else {
            alphas = mergeWeights(ifaces[0].readKeys[head],
                                  ifaces[0].readStrengths[head]);
        }
        lastAlphas_[head] = alphas;
        for (Index t = 0; t < tiles_; ++t) {
            const Vector &local = locals[t].readVectors[head];
            for (Index c = 0; c < w; ++c)
                merged.readVectors[head][c] += alphas[t] * local[c];
        }
    }

    // Concatenated (global-view) weightings for inspection: tile t's
    // local weighting occupies rows [t*n, (t+1)*n).
    const Index shardRows = shardConfig_.memoryRows;
    merged.readWeightings.assign(r, Vector(globalConfig_.memoryRows));
    merged.writeWeighting = Vector(globalConfig_.memoryRows);
    for (Index t = 0; t < tiles_; ++t) {
        for (Index head = 0; head < r; ++head) {
            for (Index i = 0; i < shardRows; ++i) {
                merged.readWeightings[head][t * shardRows + i] =
                    locals[t].readWeightings[head][i] *
                    lastAlphas_[head][t];
            }
        }
        for (Index i = 0; i < shardRows; ++i) {
            merged.writeWeighting[t * shardRows + i] =
                locals[t].writeWeighting[i] / static_cast<Real>(tiles_);
        }
    }
    return merged;
}

void
DncD::reset()
{
    for (auto &shard : shards_)
        shard->reset();
    lastAlphas_.clear();
    prevAlphas_.clear();
}

KernelProfiler
DncD::aggregateProfile() const
{
    KernelProfiler total;
    for (const auto &shard : shards_)
        total.merge(shard->profiler());
    return total;
}

} // namespace hima
