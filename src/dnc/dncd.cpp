#include "dnc/dncd.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace hima {

DncD::DncD(const DncConfig &config, Index tiles, MergePolicy policy)
    : globalConfig_(config), shardConfig_(config), tiles_(tiles),
      policy_(policy)
{
    HIMA_ASSERT(tiles_ >= 1, "DNC-D needs at least one tile");
    HIMA_ASSERT(config.memoryRows % tiles_ == 0,
                "N=%zu not divisible by Nt=%zu", config.memoryRows, tiles_);
    shardConfig_.memoryRows = config.memoryRows / tiles_;

    shards_.reserve(tiles_);
    for (Index t = 0; t < tiles_; ++t)
        shards_.push_back(std::make_unique<MemoryUnit>(shardConfig_));
    locals_.resize(tiles_);

    if (config.numThreads > 1)
        pool_ = std::make_unique<ThreadPool>(config.numThreads);
}

void
DncD::forEachTile(const std::function<void(Index)> &fn)
{
    if (pool_) {
        pool_->parallelFor(tiles_, fn);
    } else {
        for (Index t = 0; t < tiles_; ++t)
            fn(t);
    }
}

Real
DncD::confidenceScore(Index tile, const Vector &key, Real strength) const
{
    const Matrix &mem = shards_[tile]->memory();
    const Vector &norms = shards_[tile]->rowNorms();
    const Real keyNorm = key.norm();
    constexpr Real eps = 1e-6;
    Real best = -1.0;
    for (Index i = 0; i < mem.rows(); ++i) {
        const Real cos = dotRow(mem, i, key) / (norms[i] * keyNorm + eps);
        best = std::max(best, cos);
    }
    return strength * best;
}

MemoryReadout
DncD::stepInterface(const InterfaceVector &iface)
{
    return stepInterfaces(
        std::vector<InterfaceVector>(tiles_, iface));
}

MemoryReadout
DncD::stepInterfaces(const std::vector<InterfaceVector> &ifaces)
{
    HIMA_ASSERT(ifaces.size() == tiles_, "need one interface per tile");
    const Index w = globalConfig_.memoryWidth;
    const Index r = globalConfig_.readHeads;

    // Local soft write + soft read on every shard. Tiles share no state
    // (Fig. 8: all state memories are sharded), so they execute on the
    // pool; numThreads == 1 runs them sequentially, bit-identically.
    forEachTile([&](Index t) { shards_[t]->stepInto(ifaces[t], locals_[t]); });

    // Alpha selection per head. Read keys are shared across tiles
    // (queries broadcast); use tile 0's copy for the confidence gating.
    // For history-dominated reads (forward/backward mode) there is no
    // content key to score — the trained gate carries the previous
    // step's attention, so we reuse the last alphas (the tile that held
    // the anchor keeps owning the chain).
    prevAlphas_ = lastAlphas_;
    lastAlphas_.assign(r, std::vector<Real>(tiles_,
                                            1.0 / static_cast<Real>(tiles_)));
    scoredHeads_.clear();
    for (Index head = 0; head < r; ++head) {
        const ReadMode &mode = ifaces[0].readModes[head];
        if (mode.content < 0.5 && head < prevAlphas_.size() &&
            !prevAlphas_[head].empty()) {
            lastAlphas_[head] = prevAlphas_[head];
        } else if (policy_ == MergePolicy::Confidence) {
            scoredHeads_.push_back(head);
        }
        // Uniform policy keeps the 1/Nt initialization.
    }

    if (!scoredHeads_.empty()) {
        // Content-confidence gating (Sec. 5.1): every (head, tile) score
        // is independent, so the scan parallelizes over tiles.
        scoreScratch_.assign(scoredHeads_.size() * tiles_, 0.0);
        forEachTile([&](Index t) {
            for (Index k = 0; k < scoredHeads_.size(); ++k) {
                const Index head = scoredHeads_[k];
                scoreScratch_[k * tiles_ + t] =
                    confidenceScore(t, ifaces[0].readKeys[head],
                                    ifaces[0].readStrengths[head]);
            }
        });
        Vector scores(tiles_);
        for (Index k = 0; k < scoredHeads_.size(); ++k) {
            for (Index t = 0; t < tiles_; ++t)
                scores[t] = scoreScratch_[k * tiles_ + t];
            const Vector sm = softmax(scores);
            for (Index t = 0; t < tiles_; ++t)
                lastAlphas_[scoredHeads_[k]][t] = sm[t];
        }
    }

    // Read-vector merge: v_r = sum_t alpha_t v_r_t (Eq. 4).
    MemoryReadout merged;
    merged.readVectors.assign(r, Vector(w));
    for (Index head = 0; head < r; ++head) {
        const std::vector<Real> &alphas = lastAlphas_[head];
        for (Index t = 0; t < tiles_; ++t)
            axpy(alphas[t], locals_[t].readVectors[head],
                 merged.readVectors[head]);
    }

    // Concatenated (global-view) weightings for inspection: tile t's
    // local weighting occupies rows [t*n, (t+1)*n).
    const Index shardRows = shardConfig_.memoryRows;
    merged.readWeightings.assign(r, Vector(globalConfig_.memoryRows));
    merged.writeWeighting = Vector(globalConfig_.memoryRows);
    for (Index t = 0; t < tiles_; ++t) {
        for (Index head = 0; head < r; ++head) {
            for (Index i = 0; i < shardRows; ++i) {
                merged.readWeightings[head][t * shardRows + i] =
                    locals_[t].readWeightings[head][i] *
                    lastAlphas_[head][t];
            }
        }
        for (Index i = 0; i < shardRows; ++i) {
            merged.writeWeighting[t * shardRows + i] =
                locals_[t].writeWeighting[i] / static_cast<Real>(tiles_);
        }
    }
    return merged;
}

void
DncD::reset()
{
    for (auto &shard : shards_)
        shard->reset();
    lastAlphas_.clear();
    prevAlphas_.clear();
}

KernelProfiler
DncD::aggregateProfile() const
{
    KernelProfiler total;
    for (const auto &shard : shards_)
        total.merge(shard->profiler());
    return total;
}

} // namespace hima
