#include "dnc/dncd.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace hima {

DncConfig
shardConfigFor(const DncConfig &global, Index tiles)
{
    HIMA_ASSERT(tiles >= 1, "DNC-D needs at least one tile");
    HIMA_ASSERT(global.memoryRows % tiles == 0,
                "N=%zu not divisible by Nt=%zu", global.memoryRows, tiles);
    DncConfig shard = global;
    shard.memoryRows = global.memoryRows / tiles;
    return shard;
}

Real
tileConfidenceScore(const MemoryUnit &tile, const Vector &key, Real strength)
{
    const Matrix &mem = tile.memory();
    const Vector &norms = tile.rowNorms();
    const Real keyNorm = key.norm();
    constexpr Real eps = 1e-6;
    // A row whose cached norm is at or below the read skip threshold is
    // a never-written (all-zero) row at the default threshold of 0: its
    // cosine is exactly +0.0/eps == +0.0, so folding a literal 0.0 into
    // the max without the O(W) dot leaves the chain bit-identical.
    const DncConfig &cfg = tile.config();
    const Real skipT = cfg.linkageDenseSweep ? -1.0 : cfg.readSkipThreshold;
    Real best = -1.0;
    for (Index i = 0; i < mem.rows(); ++i) {
        if (norms[i] <= skipT) {
            best = std::max(best, 0.0);
            continue;
        }
        const Real cos = dotRow(mem, i, key) / (norms[i] * keyNorm + eps);
        best = std::max(best, cos);
    }
    return strength * best;
}

// --------------------------------------------------------------------
// ConfidenceGate
// --------------------------------------------------------------------

void
ConfidenceGate::reset()
{
    lastAlphas_.clear();
    prevAlphas_.clear();
    scoredHeads_.clear();
}

const std::vector<Index> &
ConfidenceGate::selectHeads(const InterfaceVector &iface, MergePolicy policy,
                            Index readHeads, Index tiles)
{
    // Alpha selection per head. Read keys are shared across tiles
    // (queries broadcast). For history-dominated reads (forward/backward
    // mode) there is no content key to score — the trained gate carries
    // the previous step's attention, so we reuse the last alphas (the
    // tile that held the anchor keeps owning the chain).
    prevAlphas_ = lastAlphas_;
    if (uniform_.size() != tiles)
        uniform_.assign(tiles, 1.0 / static_cast<Real>(tiles));
    lastAlphas_.assign(readHeads, uniform_);
    scoredHeads_.clear();
    for (Index head = 0; head < readHeads; ++head) {
        const ReadMode &mode = iface.readModes[head];
        if (mode.content < 0.5 && head < prevAlphas_.size() &&
            !prevAlphas_[head].empty()) {
            lastAlphas_[head] = prevAlphas_[head];
        } else if (policy == MergePolicy::Confidence) {
            scoredHeads_.push_back(head);
        }
        // Uniform policy keeps the 1/Nt initialization.
    }
    return scoredHeads_;
}

void
ConfidenceGate::applyScores(const std::vector<Real> &scores, Index tiles)
{
    HIMA_ASSERT(scores.size() == scoredHeads_.size() * tiles,
                "confidence scores shape mismatch: %zu != %zu x %zu",
                scores.size(), scoredHeads_.size(), tiles);
    scoreScratch_.resize(tiles);
    for (Index k = 0; k < scoredHeads_.size(); ++k) {
        for (Index t = 0; t < tiles; ++t)
            scoreScratch_[t] = scores[k * tiles + t];
        softmaxInto(scoreScratch_, smScratch_);
        for (Index t = 0; t < tiles; ++t)
            lastAlphas_[scoredHeads_[k]][t] = smScratch_[t];
    }
}

// --------------------------------------------------------------------
// Merge (Eq. 4 + global-view weighting concat)
// --------------------------------------------------------------------

void
mergeTileReadouts(const std::vector<const MemoryReadout *> &locals,
                  const std::vector<std::vector<Real>> &alphas,
                  const DncConfig &global, Index shardRows,
                  MemoryReadout &out)
{
    const Index w = global.memoryWidth;
    const Index r = global.readHeads;
    const Index tiles = locals.size();

    // Read-vector merge: v_r = sum_t alpha_t v_r_t (Eq. 4).
    out.readVectors.resize(r);
    for (Index head = 0; head < r; ++head) {
        out.readVectors[head].resize(w);
        out.readVectors[head].fill(0.0);
        const std::vector<Real> &headAlphas = alphas[head];
        for (Index t = 0; t < tiles; ++t)
            axpy(headAlphas[t], locals[t]->readVectors[head],
                 out.readVectors[head]);
    }

    // Concatenated (global-view) weightings for inspection, when the
    // locals carry them: tile t's local weighting occupies rows
    // [t*n, (t+1)*n).
    if (!locals.empty() && locals[0]->readWeightings.empty()) {
        out.readWeightings.clear();
        out.writeWeighting.resize(0);
        return;
    }
    out.readWeightings.resize(r);
    for (Index head = 0; head < r; ++head)
        out.readWeightings[head].resize(global.memoryRows);
    out.writeWeighting.resize(global.memoryRows);
    for (Index t = 0; t < tiles; ++t) {
        for (Index head = 0; head < r; ++head) {
            for (Index i = 0; i < shardRows; ++i) {
                out.readWeightings[head][t * shardRows + i] =
                    locals[t]->readWeightings[head][i] * alphas[head][t];
            }
        }
        for (Index i = 0; i < shardRows; ++i) {
            out.writeWeighting[t * shardRows + i] =
                locals[t]->writeWeighting[i] / static_cast<Real>(tiles);
        }
    }
}

// --------------------------------------------------------------------
// DncD
// --------------------------------------------------------------------

DncD::DncD(const DncConfig &config, Index tiles, MergePolicy policy)
    : globalConfig_(config), shardConfig_(shardConfigFor(config, tiles)),
      tiles_(tiles), policy_(policy)
{
    shards_.reserve(tiles_);
    for (Index t = 0; t < tiles_; ++t)
        shards_.push_back(std::make_unique<MemoryUnit>(shardConfig_));
    locals_.resize(tiles_);
    localPtrs_.resize(tiles_);
    for (Index t = 0; t < tiles_; ++t)
        localPtrs_[t] = &locals_[t];

    if (config.numThreads > 1)
        pool_ = std::make_unique<ThreadPool>(config.numThreads);
}

void
DncD::forEachTile(const std::function<void(Index)> &fn)
{
    if (pool_) {
        pool_->parallelFor(tiles_, fn);
    } else {
        for (Index t = 0; t < tiles_; ++t)
            fn(t);
    }
}

MemoryReadout
DncD::stepInterface(const InterfaceVector &iface)
{
    MemoryReadout out;
    stepInterfaceInto(iface, out);
    return out;
}

void
DncD::stepInterfaceInto(const InterfaceVector &iface, MemoryReadout &out)
{
    // Broadcast through reused member copies: after the first step the
    // assignments are same-shape and allocate nothing.
    broadcast_.resize(tiles_);
    for (Index t = 0; t < tiles_; ++t)
        broadcast_[t] = iface;
    stepCore(broadcast_, out);
}

MemoryReadout
DncD::stepInterfaces(const std::vector<InterfaceVector> &ifaces)
{
    MemoryReadout out;
    stepCore(ifaces, out);
    return out;
}

void
DncD::stepCore(const std::vector<InterfaceVector> &ifaces,
               MemoryReadout &out)
{
    HIMA_ASSERT(ifaces.size() == tiles_, "need one interface per tile");

    // Local soft write + soft read on every shard. Tiles share no state
    // (Fig. 8: all state memories are sharded), so they execute on the
    // pool; numThreads == 1 runs them sequentially, bit-identically.
    forEachTile([&](Index t) { shards_[t]->stepInto(ifaces[t], locals_[t]); });

    const std::vector<Index> &scored = gate_.selectHeads(
        ifaces[0], policy_, globalConfig_.readHeads, tiles_);

    if (!scored.empty()) {
        // Content-confidence gating (Sec. 5.1): every (head, tile) score
        // is independent, so the scan parallelizes over tiles.
        scoreScratch_.assign(scored.size() * tiles_, 0.0);
        forEachTile([&](Index t) {
            for (Index k = 0; k < scored.size(); ++k) {
                const Index head = scored[k];
                scoreScratch_[k * tiles_ + t] =
                    tileConfidenceScore(*shards_[t], ifaces[0].readKeys[head],
                                        ifaces[0].readStrengths[head]);
            }
        });
        gate_.applyScores(scoreScratch_, tiles_);
    }

    mergeTileReadouts(localPtrs_, gate_.alphas(), globalConfig_,
                      shardConfig_.memoryRows, out);
}

void
DncD::reset()
{
    for (auto &shard : shards_)
        shard->reset();
    gate_.reset();
}

KernelProfiler
DncD::aggregateProfile() const
{
    KernelProfiler total;
    for (const auto &shard : shards_)
        total.merge(shard->profiler());
    return total;
}

} // namespace hima
