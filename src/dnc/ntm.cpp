#include "dnc/ntm.h"

#include <cmath>

#include "common/math_util.h"

namespace hima {

NtmMemoryUnit::NtmMemoryUnit(const DncConfig &config)
    : config_(config),
      addressing_(config.approximateSoftmax, config.softmaxSegments),
      memory_(config.memoryRows, config.memoryWidth),
      writeWeighting_(config.memoryRows),
      readWeightings_(config.readHeads, Vector(config.memoryRows))
{
    config_.validate();
}

Vector
NtmMemoryUnit::address(const NtmHeadInput &head, const Vector &prevWeighting)
{
    HIMA_ASSERT(head.shift.size() == 3, "NTM shift kernel must be length 3");
    const Index n = config_.memoryRows;

    // Content addressing (shared CW/CR kernels with DNC).
    const Vector content =
        addressing_.weighting(memory_, head.key, head.strength, &profiler_);

    // Interpolate with the previous weighting, circular-shift, sharpen.
    // These are cheap element-wise access-kernel operations; charge them
    // to the merge kernels so category accounting stays comparable.
    Vector gated(n);
    for (Index i = 0; i < n; ++i)
        gated[i] = head.gate * content[i]
                 + (1.0 - head.gate) * prevWeighting[i];

    Vector shifted(n);
    for (Index i = 0; i < n; ++i) {
        // shift[0] = move -1, shift[1] = stay, shift[2] = move +1.
        const Index prev = (i + n - 1) % n;
        const Index next = (i + 1) % n;
        shifted[i] = gated[next] * head.shift[0]
                   + gated[i] * head.shift[1]
                   + gated[prev] * head.shift[2];
    }

    Vector sharpened(n);
    Real denom = 0.0;
    for (Index i = 0; i < n; ++i) {
        sharpened[i] = std::pow(shifted[i], head.gamma);
        denom += sharpened[i];
    }
    HIMA_ASSERT(denom > 0.0, "NTM sharpening denominator vanished");
    for (Index i = 0; i < n; ++i)
        sharpened[i] /= denom;

    auto &c = profiler_.at(Kernel::ReadMerge);
    c.elementOps += 7 * n;
    c.specialOps += n; // pow
    c.stateMemAccesses += 3 * n;
    return sharpened;
}

std::vector<Vector>
NtmMemoryUnit::step(const NtmInterface &iface)
{
    const Index n = config_.memoryRows;
    const Index w = config_.memoryWidth;
    HIMA_ASSERT(iface.readHeads.size() == config_.readHeads,
                "NTM read head arity");
    HIMA_ASSERT(iface.eraseVector.size() == w && iface.addVector.size() == w,
                "NTM erase/add width");

    // Soft write.
    writeWeighting_ = address(iface.writeHead, writeWeighting_);
    {
        KernelScope scope(profiler_, Kernel::MemoryWrite);
        for (Index i = 0; i < n; ++i) {
            const Real wi = writeWeighting_[i];
            if (wi == 0.0)
                continue;
            for (Index c = 0; c < w; ++c)
                memory_(i, c) = memory_(i, c) * (1.0 - wi *
                                                 iface.eraseVector[c])
                              + wi * iface.addVector[c];
        }
        auto &c = profiler_.at(Kernel::MemoryWrite);
        c.elementOps += 4ull * n * w;
        c.extMemAccesses += 2ull * n * w;
    }

    // Soft reads.
    std::vector<Vector> reads;
    reads.reserve(config_.readHeads);
    for (Index r = 0; r < config_.readHeads; ++r) {
        readWeightings_[r] = address(iface.readHeads[r], readWeightings_[r]);
        KernelScope scope(profiler_, Kernel::MemoryRead);
        reads.push_back(matTVec(memory_, readWeightings_[r]));
        auto &c = profiler_.at(Kernel::MemoryRead);
        c.macOps += static_cast<std::uint64_t>(n) * w;
        c.extMemAccesses += static_cast<std::uint64_t>(n) * w;
    }
    return reads;
}

void
NtmMemoryUnit::seedMemory(const Matrix &contents)
{
    HIMA_ASSERT(contents.rows() == config_.memoryRows &&
                    contents.cols() == config_.memoryWidth,
                "seed shape (%zu,%zu) != memory (%zu,%zu)",
                contents.rows(), contents.cols(), config_.memoryRows,
                config_.memoryWidth);
    memory_ = contents;
}

void
NtmMemoryUnit::reset()
{
    memory_.fill(0.0);
    writeWeighting_.fill(0.0);
    for (auto &rw : readWeightings_)
        rw.fill(0.0);
}

} // namespace hima
