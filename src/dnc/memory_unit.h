/**
 * @file
 * The DNC memory unit: the complete Fig. 2 dataflow.
 *
 * One step() consumes an InterfaceVector and produces R read vectors,
 * executing:
 *
 *   Soft write: content write weighting (CW) -> retention/usage/sort/
 *   allocation (HW) -> write weight merge (WM) -> memory write (MW)
 *
 *   Soft read: linkage + precedence + forward/backward (HR) -> content
 *   read weighting (CR) -> read weight merge (RM) -> memory read (MR)
 *
 * All state (M, u, p, L, previous weightings) lives here; the LSTM
 * controller is external. Every kernel charges the KernelProfiler.
 *
 * The hot path is allocation-free: stepInto() writes into a caller-owned
 * MemoryReadout, every temporary lives in a preallocated Workspace, and
 * the per-row L2 norms needed by content addressing are maintained
 * incrementally by the memory write instead of being recomputed for
 * every head every timestep.
 */

#ifndef HIMA_DNC_MEMORY_UNIT_H
#define HIMA_DNC_MEMORY_UNIT_H

#include <vector>

#include "dnc/allocation.h"
#include "dnc/content_addressing.h"
#include "dnc/dnc_config.h"
#include "dnc/interface.h"
#include "dnc/temporal_linkage.h"
#include "dnc/usage.h"

namespace hima {

/** Result of one memory-unit step. */
struct MemoryReadout
{
    /** R read vectors of width W. */
    std::vector<Vector> readVectors;
    /** The read weightings that produced them (for inspection/tests). */
    std::vector<Vector> readWeightings;
    /** The write weighting applied this step. */
    Vector writeWeighting;
};

/**
 * The complete recurrent state of one MemoryUnit, flattened for
 * checkpoint/restore. Everything a step depends on is here — the
 * Workspace, profiler and sort scratch are derived per step, so a
 * restore of this snapshot followed by the same interface stream
 * reproduces the original run bit-for-bit (tested).
 *
 * Matrices are stored row-major in flat Vectors so the shard wire codec
 * can move them with the bulk Real-array path; `sizeFor()` pre-sizes
 * every buffer (capacity-reusing) so steady-state checkpointing stays
 * allocation-free.
 */
struct MemoryTileState
{
    Vector memory;         ///< N x W, row-major
    Vector rowNorms;       ///< N
    Vector usage;          ///< N
    Vector linkage;        ///< N x N, row-major
    Vector precedence;     ///< N
    Vector writeWeighting; ///< N
    std::vector<Vector> readWeightings; ///< R x N

    /**
     * The linkage's monotone touched-slot set (ascending, <= N
     * entries). Not derivable from the other fields at positive skip
     * thresholds, so it rides in every snapshot and checkpoint frame —
     * restoring it is what keeps a restored run's sparse sweeps
     * bit-identical to the undisturbed run at any threshold.
     */
    std::vector<Index> touchedSlots;

    /** Resize every buffer for `config`'s shapes (keeps capacity). */
    void sizeFor(const DncConfig &config);
};

/** The stateful DNC memory unit. */
class MemoryUnit
{
  public:
    explicit MemoryUnit(const DncConfig &config);

    /**
     * Execute one full soft write + soft read cycle.
     *
     * @param iface decoded interface vector from the controller
     */
    MemoryReadout step(const InterfaceVector &iface);

    /**
     * Allocation-free step: identical numerics to step(), but the result
     * is written into a caller-owned readout whose buffers are reused
     * across calls. After the first call sizes `out`, a steady-state
     * step performs zero heap allocations (asserted in tests).
     */
    void stepInto(const InterfaceVector &iface, MemoryReadout &out);

    /** Zero all state (episode boundary). */
    void reset();

    /** Snapshot all recurrent state into `out` (sized, then copied). */
    void captureState(MemoryTileState &out) const;

    /**
     * Overwrite all recurrent state from a snapshot with matching
     * shapes (fatal on mismatch). Allocation-free: every destination
     * buffer was sized at construction.
     */
    void restoreState(const MemoryTileState &state);

    // --- state inspection (tests, workloads, the DNC-D merge) ---
    const Matrix &memory() const { return memory_; }
    const Vector &usage() const { return usage_; }
    const TemporalLinkage &linkage() const { return linkage_; }
    const Vector &writeWeighting() const { return writeWeighting_; }
    const std::vector<Vector> &readWeightings() const
    {
        return readWeightings_;
    }
    const DncConfig &config() const { return config_; }

    /**
     * Cached L2 norm of each memory row, maintained by the memory write.
     * Invariant (tested): rowNorms()[i] == memory().row(i).norm() for
     * every i, bit-for-bit, because the cache is refreshed from exactly
     * the rows the write touches.
     */
    const Vector &rowNorms() const { return rowNorms_; }

    KernelProfiler &profiler() { return profiler_; }
    const KernelProfiler &profiler() const { return profiler_; }

    /**
     * Install a hardware sorting backend for the usage sort (defaults to
     * the reference sort). Lets the accelerator model reuse the exact
     * functional pipeline while charging hardware sorter cycles.
     */
    void setUsageSorter(UsageSortFn sorter);

  private:
    /** Soft write per Sec. 2.1.1; fills the merged write weighting. */
    void softWrite(const InterfaceVector &iface, Vector &writeWeighting);

    /** Soft read per Sec. 2.1.2; fills the readout. */
    void softRead(const InterfaceVector &iface, MemoryReadout &out);

    /** Apply erase+add to the external memory (MW), refreshing norms. */
    void memoryWrite(const Vector &writeWeighting, const Vector &erase,
                     const Vector &write);

    DncConfig config_;
    ContentAddressing addressing_;
    UsageSortFn usageSorter_;
    bool customSorter_ = false; ///< true once setUsageSorter() was called
    Index skimK_;

    Matrix memory_;                     ///< external memory, N x W
    Vector rowNorms_;                   ///< cached row L2 norms, N
    Vector usage_;                      ///< usage state, N
    TemporalLinkage linkage_;           ///< linkage + precedence state
    Vector writeWeighting_;             ///< previous write weighting, N
    std::vector<Vector> readWeightings_; ///< previous read weightings, R x N

    Workspace ws_;                      ///< hot-path scratch buffers
    std::vector<SortRecord> sortRecords_; ///< usage-sort scratch

    KernelProfiler profiler_;
};

} // namespace hima

#endif // HIMA_DNC_MEMORY_UNIT_H
