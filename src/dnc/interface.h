/**
 * @file
 * Interface-vector codec: the contract between the LSTM controller and the
 * memory unit (the v^i of Fig. 1/2).
 *
 * The raw controller emission is a flat vector; this module slices it into
 * the named fields and applies the DNC paper's range constraints (oneplus
 * for strengths, sigmoid for gates/erase, softmax for read modes).
 */

#ifndef HIMA_DNC_INTERFACE_H
#define HIMA_DNC_INTERFACE_H

#include <vector>

#include "dnc/dnc_config.h"

namespace hima {

/** Read-mode mixing weights: backward / content / forward (HR.(3)). */
struct ReadMode
{
    Real backward;
    Real content;
    Real forward;
};

/** Decoded interface vector. */
struct InterfaceVector
{
    std::vector<Vector> readKeys;   ///< R keys of width W
    std::vector<Real> readStrengths; ///< R strengths, each >= 1
    Vector writeKey;                ///< width W
    Real writeStrength;             ///< >= 1
    Vector eraseVector;             ///< width W, in (0, 1)
    Vector writeVector;             ///< width W
    std::vector<Real> freeGates;    ///< R gates in (0, 1)
    Real allocationGate;            ///< in (0, 1)
    Real writeGate;                 ///< in (0, 1)
    std::vector<ReadMode> readModes; ///< R simplex triples
};

/**
 * Decode a flat emission of length config.interfaceSize() into the named
 * fields, applying the constraint non-linearities.
 */
InterfaceVector decodeInterface(const Vector &raw, const DncConfig &config);

/**
 * Destination-passing decode: field buffers inside `out` are resized and
 * overwritten, so decoding into the same InterfaceVector every timestep
 * performs zero steady-state heap allocations. Bit-identical to
 * decodeInterface().
 */
void decodeInterfaceInto(const Vector &raw, const DncConfig &config,
                         InterfaceVector &out);

/**
 * Re-encode an InterfaceVector into pre-constraint raw form is not
 * possible (the non-linearities are not all invertible at the edges), but
 * tests and workloads need to *construct* scripted interfaces directly;
 * this validates field shapes against a config.
 */
void validateInterface(const InterfaceVector &iface, const DncConfig &config);

} // namespace hima

#endif // HIMA_DNC_INTERFACE_H
