#include "dnc/content_addressing.h"

#include <cmath>

#include "common/math_util.h"

namespace hima {

ContentAddressing::ContentAddressing(bool approximate, int segments)
{
    if (approximate)
        approx_ = std::make_unique<SoftmaxApprox>(segments);
}

Vector
ContentAddressing::weighting(const Matrix &memory, const Vector &key,
                             Real strength, KernelProfiler *profiler) const
{
    HIMA_ASSERT(memory.cols() == key.size(),
                "key width %zu != memory width %zu",
                key.size(), memory.cols());
    const Index n = memory.rows();
    const Index w = memory.cols();

    // CW/CR.(1) Normalize: row norms and the key norm.
    Vector rowNorms(n);
    Real keyNorm = 0.0;
    {
        std::unique_ptr<KernelScope> scope;
        if (profiler)
            scope = std::make_unique<KernelScope>(*profiler,
                                                  Kernel::Normalize);
        for (Index i = 0; i < n; ++i) {
            Real acc = 0.0;
            for (Index c = 0; c < w; ++c) {
                const Real v = memory(i, c);
                acc += v * v;
            }
            rowNorms[i] = std::sqrt(acc);
        }
        keyNorm = key.norm();
        if (profiler) {
            auto &c = profiler->at(Kernel::Normalize);
            c.macOps += n * w + w;       // squared accumulations
            c.specialOps += n + 1;       // square roots
            c.extMemAccesses += n * w;   // every memory word read
            c.stateMemAccesses += w;     // the key
        }
    }

    // CW/CR.(2) Similarity: cosine scores sharpened and softmaxed.
    Vector scores(n);
    {
        std::unique_ptr<KernelScope> scope;
        if (profiler)
            scope = std::make_unique<KernelScope>(*profiler,
                                                  Kernel::Similarity);
        constexpr Real eps = 1e-6;
        for (Index i = 0; i < n; ++i) {
            Real acc = 0.0;
            for (Index c = 0; c < w; ++c)
                acc += memory(i, c) * key[c];
            scores[i] = strength * acc / (rowNorms[i] * keyNorm + eps);
        }
        if (profiler) {
            auto &c = profiler->at(Kernel::Similarity);
            c.macOps += n * w;
            c.specialOps += n;          // divides
            c.extMemAccesses += n * w;
            c.stateMemAccesses += w;
        }
    }

    Vector result = approx_ ? approx_->eval(scores) : softmax(scores);
    if (profiler) {
        auto &c = profiler->at(Kernel::Similarity);
        c.specialOps += n;              // exponentials (exact or PLA)
        c.elementOps += n;              // normalization divides
    }
    return result;
}

} // namespace hima
