#include "dnc/content_addressing.h"

#include <cmath>
#include <optional>

#include "common/math_util.h"

namespace hima {

ContentAddressing::ContentAddressing(bool approximate, int segments,
                                     Real skipThreshold, bool denseSweep)
    : skipThreshold_(skipThreshold), denseSweep_(denseSweep)
{
    HIMA_ASSERT(skipThreshold_ >= 0.0, "negative read skip threshold");
    if (approximate)
        approx_ = std::make_unique<SoftmaxApprox>(segments);
}

Vector
ContentAddressing::weighting(const Matrix &memory, const Vector &key,
                             Real strength, KernelProfiler *profiler) const
{
    Vector scores;
    Vector out;
    weightingInto(memory, key, strength, nullptr, scores, out, profiler);
    return out;
}

void
ContentAddressing::weightingInto(const Matrix &memory, const Vector &key,
                                 Real strength,
                                 const Vector *cachedRowNorms,
                                 Vector &scores, Vector &out,
                                 KernelProfiler *profiler) const
{
    HIMA_ASSERT(memory.cols() == key.size(),
                "key width %zu != memory width %zu",
                key.size(), memory.cols());
    const Index n = memory.rows();
    const Index w = memory.cols();
    scores.resize(n);
    out.resize(n);

    // CW/CR.(1) Normalize: row norms and the key norm. With a cache the
    // row norms are already maintained by the memory write; the hardware
    // cost model is charged identically either way (the accelerator
    // normalizes every row each lookup — only the simulator skips work).
    const Real *rowNorms = nullptr;
    Real keyNorm = 0.0;
    {
        std::optional<KernelScope> scope;
        if (profiler)
            scope.emplace(*profiler, Kernel::Normalize);
        if (cachedRowNorms) {
            HIMA_ASSERT(cachedRowNorms->size() == n,
                        "row-norm cache length %zu != rows %zu",
                        cachedRowNorms->size(), n);
            rowNorms = cachedRowNorms->data();
        } else {
            // No cache: compute the norms into `out`, which is free as
            // scratch until the softmax at the end overwrites it.
            Real *fresh = out.data();
            for (Index i = 0; i < n; ++i) {
                const Real *row = memory.rowPtr(i);
                Real acc = 0.0;
                for (Index c = 0; c < w; ++c)
                    acc += row[c] * row[c];
                fresh[i] = std::sqrt(acc);
            }
            rowNorms = fresh;
        }
        keyNorm = key.norm();
        if (profiler) {
            auto &c = profiler->at(Kernel::Normalize);
            c.macOps += n * w + w;       // squared accumulations
            c.specialOps += n + 1;       // square roots
            c.extMemAccesses += n * w;   // every memory word read
            c.stateMemAccesses += w;     // the key
        }
    }

    // CW/CR.(2) Similarity: cosine scores sharpened and softmaxed.
    {
        std::optional<KernelScope> scope;
        if (profiler)
            scope.emplace(*profiler, Kernel::Similarity);
        constexpr Real eps = 1e-6;
        const Real *pkey = key.data();
        Real *ps = scores.data();
        // Four rows at a time: each row keeps its own accumulator (and
        // its own j-ascending chain, so results are bit-identical to
        // the one-row loop); the four independent chains overlap in the
        // FPU pipeline instead of serializing on add latency. Run
        // alignment does not affect bits, so the sparse path below can
        // reuse the same bodies over runs of consecutive active rows.
        const auto scoreRun = [&](Index beg, Index end) {
            Index i = beg;
            for (; i + 4 <= end; i += 4) {
                const Real *r0 = memory.rowPtr(i + 0);
                const Real *r1 = memory.rowPtr(i + 1);
                const Real *r2 = memory.rowPtr(i + 2);
                const Real *r3 = memory.rowPtr(i + 3);
                Real a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
                for (Index c = 0; c < w; ++c) {
                    const Real kc = pkey[c];
                    a0 += r0[c] * kc;
                    a1 += r1[c] * kc;
                    a2 += r2[c] * kc;
                    a3 += r3[c] * kc;
                }
                ps[i + 0] = strength * a0 / (rowNorms[i + 0] * keyNorm + eps);
                ps[i + 1] = strength * a1 / (rowNorms[i + 1] * keyNorm + eps);
                ps[i + 2] = strength * a2 / (rowNorms[i + 2] * keyNorm + eps);
                ps[i + 3] = strength * a3 / (rowNorms[i + 3] * keyNorm + eps);
            }
            for (; i < end; ++i) {
                const Real *row = memory.rowPtr(i);
                Real acc = 0.0;
                for (Index c = 0; c < w; ++c)
                    acc += row[c] * pkey[c];
                ps[i] = strength * acc / (rowNorms[i] * keyNorm + eps);
            }
        };

        Index skipped = 0;
        if (!cachedRowNorms || denseSweep_) {
            scoreRun(0, n);
        } else {
            // Sparse scan: a row whose cached norm is at or below the
            // threshold is scored +0.0 without the dot. At threshold 0
            // that is exactly the dense result — the row is all-zero,
            // its dot accumulates ±0.0 terms to +0.0, and sharpening
            // keeps the sign: strength * +0.0 / eps == +0.0.
            const Real skipT = skipThreshold_;
            Index i = 0;
            while (i < n) {
                if (rowNorms[i] <= skipT) {
                    ps[i] = 0.0;
                    ++skipped;
                    ++i;
                    continue;
                }
                Index runEnd = i + 1;
                while (runEnd < n && rowNorms[runEnd] > skipT)
                    ++runEnd;
                scoreRun(i, runEnd);
                i = runEnd;
            }
        }
        if (profiler) {
            auto &c = profiler->at(Kernel::Similarity);
            c.macOps += n * w;
            c.specialOps += n;          // divides
            c.extMemAccesses += n * w;
            c.stateMemAccesses += w;
            c.skippedRows += skipped;
            c.skippedOps += static_cast<std::uint64_t>(skipped) * w;
        }
    }

    if (approx_)
        approx_->evalInto(scores, out);
    else
        softmaxInto(scores, out);
    if (profiler) {
        auto &c = profiler->at(Kernel::Similarity);
        c.specialOps += n;              // exponentials (exact or PLA)
        c.elementOps += n;              // normalization divides
    }
}

} // namespace hima
