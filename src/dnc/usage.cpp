#include "dnc/usage.h"

#include <optional>

#include "common/tensor.h"

namespace hima {

Vector
retentionVector(const std::vector<Real> &freeGates,
                const std::vector<Vector> &readWeights,
                KernelProfiler *profiler)
{
    Vector psi;
    retentionInto(freeGates, readWeights, psi, profiler);
    return psi;
}

void
retentionInto(const std::vector<Real> &freeGates,
              const std::vector<Vector> &readWeights, Vector &psi,
              KernelProfiler *profiler)
{
    HIMA_ASSERT(freeGates.size() == readWeights.size(),
                "free gates %zu != read heads %zu",
                freeGates.size(), readWeights.size());
    HIMA_ASSERT(!readWeights.empty(), "need at least one read head");

    const Index n = readWeights[0].size();
    std::optional<KernelScope> scope;
    if (profiler)
        scope.emplace(*profiler, Kernel::Retention);

    psi.resize(n);
    psi.fill(1.0);
    Real *pp = psi.data();
    for (Index r = 0; r < readWeights.size(); ++r) {
        HIMA_ASSERT(readWeights[r].size() == n, "read weighting length");
        const Real gate = freeGates[r];
        const Real *pw = readWeights[r].data();
        for (Index i = 0; i < n; ++i)
            pp[i] *= 1.0 - gate * pw[i];
    }

    if (profiler) {
        auto &c = profiler->at(Kernel::Retention);
        c.elementOps += 2 * readWeights.size() * n; // mult + accumulate-prod
        c.stateMemAccesses += readWeights.size() * n; // read weight memory
    }
}

Vector
updateUsage(const Vector &usage, const Vector &prevWriteWeighting,
            const Vector &retention, KernelProfiler *profiler)
{
    Vector out = usage;
    updateUsageInPlace(out, prevWriteWeighting, retention, profiler);
    return out;
}

void
updateUsageInPlace(Vector &usage, const Vector &prevWriteWeighting,
                   const Vector &retention, KernelProfiler *profiler)
{
    const Index n = usage.size();
    HIMA_ASSERT(prevWriteWeighting.size() == n && retention.size() == n,
                "usage update shape mismatch");

    std::optional<KernelScope> scope;
    if (profiler)
        scope.emplace(*profiler, Kernel::Usage);

    Real *pu = usage.data();
    const Real *pw = prevWriteWeighting.data();
    const Real *pr = retention.data();
    for (Index i = 0; i < n; ++i) {
        const Real u = pu[i];
        const Real w = pw[i];
        pu[i] = (u + w - u * w) * pr[i];
    }

    if (profiler) {
        auto &c = profiler->at(Kernel::Usage);
        c.elementOps += 4 * n;
        c.stateMemAccesses += 3 * n; // usage read+write, write weighting
    }
}

} // namespace hima
