#include "dnc/usage.h"

#include <memory>

#include "common/tensor.h"

namespace hima {

Vector
retentionVector(const std::vector<Real> &freeGates,
                const std::vector<Vector> &readWeights,
                KernelProfiler *profiler)
{
    HIMA_ASSERT(freeGates.size() == readWeights.size(),
                "free gates %zu != read heads %zu",
                freeGates.size(), readWeights.size());
    HIMA_ASSERT(!readWeights.empty(), "need at least one read head");

    const Index n = readWeights[0].size();
    std::unique_ptr<KernelScope> scope;
    if (profiler)
        scope = std::make_unique<KernelScope>(*profiler, Kernel::Retention);

    Vector psi(n, 1.0);
    for (Index r = 0; r < readWeights.size(); ++r) {
        HIMA_ASSERT(readWeights[r].size() == n, "read weighting length");
        const Real gate = freeGates[r];
        for (Index i = 0; i < n; ++i)
            psi[i] *= 1.0 - gate * readWeights[r][i];
    }

    if (profiler) {
        auto &c = profiler->at(Kernel::Retention);
        c.elementOps += 2 * readWeights.size() * n; // mult + accumulate-prod
        c.stateMemAccesses += readWeights.size() * n; // read weight memory
    }
    return psi;
}

Vector
updateUsage(const Vector &usage, const Vector &prevWriteWeighting,
            const Vector &retention, KernelProfiler *profiler)
{
    const Index n = usage.size();
    HIMA_ASSERT(prevWriteWeighting.size() == n && retention.size() == n,
                "usage update shape mismatch");

    std::unique_ptr<KernelScope> scope;
    if (profiler)
        scope = std::make_unique<KernelScope>(*profiler, Kernel::Usage);

    Vector out(n);
    for (Index i = 0; i < n; ++i) {
        const Real u = usage[i];
        const Real w = prevWriteWeighting[i];
        out[i] = (u + w - u * w) * retention[i];
    }

    if (profiler) {
        auto &c = profiler->at(Kernel::Usage);
        c.elementOps += 4 * n;
        c.stateMemAccesses += 3 * n; // usage read+write, write weighting
    }
    return out;
}

} // namespace hima
