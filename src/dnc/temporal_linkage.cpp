#include "dnc/temporal_linkage.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace hima {

namespace {

/**
 * Absolute mass of one linkage row, summed in ascending-j order. The
 * sweep's in-pass refresh and restoreState()'s rebuild both call this,
 * so an undisturbed run and a checkpoint-restored one make identical
 * skip decisions (same values, same summation order, bit-identical).
 */
inline Real
rowMassOf(const Real *row, Index n)
{
    Real acc = 0.0;
    for (Index j = 0; j < n; ++j)
        acc += std::fabs(row[j]);
    return acc;
}

/**
 * Column-sparse variant: sums |row[j]| over the ascending touched-column
 * list only. Bit-identical to rowMassOf when every unlisted column is
 * exactly zero (the touched-set invariant): the skipped terms are
 * fabs(+0.0) == +0.0 and the accumulator is nonnegative, so adding them
 * never changes a bit.
 */
inline Real
rowMassOfSparse(const Real *row, const Index *cols, Index count)
{
    Real acc = 0.0;
    for (Index k = 0; k < count; ++k)
        acc += std::fabs(row[cols[k]]);
    return acc;
}

/**
 * Read-stage body for one updated row of L: accumulates the row's
 * contribution to every head's forward dot (chain order: j ascending)
 * and to the interleaved backward lanes (chain order: i ascending at
 * the caller). R is the compile-time head count; each head owns one
 * lane, multiplies and adds round separately.
 */
template <Index R>
inline void
readRow(const Real *row, Index n, const Real *wInt, Real *bwInt,
        const Real *wv, Real *accOut)
{
    Real acc[R] = {};
    for (Index j = 0; j < n; ++j) {
        const Real lij = row[j];
        const Real *wj = wInt + j * R;
        Real *bj = bwInt + j * R;
        for (Index h = 0; h < R; ++h) {
            acc[h] += lij * wj[h];
            bj[h] += lij * wv[h];
        }
    }
    for (Index h = 0; h < R; ++h)
        accOut[h] = acc[h];
}

/**
 * Column-sparse readRow: iterates the ascending touched-column list
 * instead of all N columns. An unlisted column j has row[j] == +0.0
 * (never written since reset), so its forward terms are +0.0 and its
 * backward lanes receive += +0.0 — dropping both leaves every
 * accumulation chain bit-identical to the dense kernel (L entries are
 * never -0.0 and the weightings are nonnegative, so no chain can sit
 * at -0.0 when a dropped +0.0 would have flushed it to +0.0).
 */
template <Index R>
inline void
readRowSparse(const Real *row, const Index *cols, Index count,
              const Real *wInt, Real *bwInt, const Real *wv, Real *accOut)
{
    Real acc[R] = {};
    for (Index k = 0; k < count; ++k) {
        const Index j = cols[k];
        const Real lij = row[j];
        const Real *wj = wInt + j * R;
        Real *bj = bwInt + j * R;
        for (Index h = 0; h < R; ++h) {
            acc[h] += lij * wj[h];
            bj[h] += lij * wv[h];
        }
    }
    for (Index h = 0; h < R; ++h)
        accOut[h] = acc[h];
}

#if defined(__AVX2__)
/**
 * Four-head specialization: the four lanes live in one 256-bit vector.
 * Explicit mul-then-add (no FMA contraction) keeps every lane's
 * arithmetic bit-identical to the scalar chains; the auto-vectorizer
 * misses this pattern, and the scalar version is latency-bound.
 */
template <>
inline void
readRow<4>(const Real *row, Index n, const Real *wInt, Real *bwInt,
           const Real *wv, Real *accOut)
{
    __m256d acc = _mm256_setzero_pd();
    const __m256d wvv = _mm256_loadu_pd(wv);
    for (Index j = 0; j < n; ++j) {
        const __m256d lij = _mm256_set1_pd(row[j]);
        acc = _mm256_add_pd(acc,
                            _mm256_mul_pd(lij, _mm256_loadu_pd(wInt + 4 * j)));
        _mm256_storeu_pd(
            bwInt + 4 * j,
            _mm256_add_pd(_mm256_loadu_pd(bwInt + 4 * j),
                          _mm256_mul_pd(lij, wvv)));
    }
    _mm256_storeu_pd(accOut, acc);
}

/**
 * Four heads x four rows: amortizes the wInt/bwInt stream over four
 * rows and keeps eight independent multiply-add chains in flight. The
 * backward lanes absorb the four rows' contributions in ascending row
 * order (four separate adds per j), and each forward accumulator keeps
 * its own j-ascending chain — still bit-identical to the standalone
 * kernels.
 */
inline void
readQuad4(const Real *r0, Index n, const Real *wInt, Real *bwInt,
          const Real *wv0, Real accOut[4][4])
{
    const Real *r1 = r0 + n;
    const Real *r2 = r1 + n;
    const Real *r3 = r2 + n;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    const __m256d v0 = _mm256_loadu_pd(wv0);
    const __m256d v1 = _mm256_loadu_pd(wv0 + 4);
    const __m256d v2 = _mm256_loadu_pd(wv0 + 8);
    const __m256d v3 = _mm256_loadu_pd(wv0 + 12);
    for (Index j = 0; j < n; ++j) {
        const __m256d wj = _mm256_loadu_pd(wInt + 4 * j);
        const __m256d l0 = _mm256_set1_pd(r0[j]);
        const __m256d l1 = _mm256_set1_pd(r1[j]);
        const __m256d l2 = _mm256_set1_pd(r2[j]);
        const __m256d l3 = _mm256_set1_pd(r3[j]);
        a0 = _mm256_add_pd(a0, _mm256_mul_pd(l0, wj));
        a1 = _mm256_add_pd(a1, _mm256_mul_pd(l1, wj));
        a2 = _mm256_add_pd(a2, _mm256_mul_pd(l2, wj));
        a3 = _mm256_add_pd(a3, _mm256_mul_pd(l3, wj));
        __m256d b = _mm256_loadu_pd(bwInt + 4 * j);
        b = _mm256_add_pd(b, _mm256_mul_pd(l0, v0));
        b = _mm256_add_pd(b, _mm256_mul_pd(l1, v1));
        b = _mm256_add_pd(b, _mm256_mul_pd(l2, v2));
        b = _mm256_add_pd(b, _mm256_mul_pd(l3, v3));
        _mm256_storeu_pd(bwInt + 4 * j, b);
    }
    _mm256_storeu_pd(accOut[0], a0);
    _mm256_storeu_pd(accOut[1], a1);
    _mm256_storeu_pd(accOut[2], a2);
    _mm256_storeu_pd(accOut[3], a3);
}

/**
 * Column-sparse four-head specialization: same lanes and rounding as
 * readRow<4>, with j drawn from the touched-column list. The per-column
 * loads were already gathered (wInt + 4j), so the indirection adds no
 * extra memory traffic per visited column.
 */
template <>
inline void
readRowSparse<4>(const Real *row, const Index *cols, Index count,
                 const Real *wInt, Real *bwInt, const Real *wv,
                 Real *accOut)
{
    __m256d acc = _mm256_setzero_pd();
    const __m256d wvv = _mm256_loadu_pd(wv);
    for (Index k = 0; k < count; ++k) {
        const Index j = cols[k];
        const __m256d lij = _mm256_set1_pd(row[j]);
        acc = _mm256_add_pd(acc,
                            _mm256_mul_pd(lij, _mm256_loadu_pd(wInt + 4 * j)));
        _mm256_storeu_pd(
            bwInt + 4 * j,
            _mm256_add_pd(_mm256_loadu_pd(bwInt + 4 * j),
                          _mm256_mul_pd(lij, wvv)));
    }
    _mm256_storeu_pd(accOut, acc);
}

/**
 * Column-sparse four-head x four-row kernel: readQuad4 walking the
 * touched-column list. Chain structure and rounding match readQuad4
 * column for column, so visiting only the (all other columns are
 * +0.0) touched set is bit-identical.
 */
inline void
readQuad4Sparse(const Real *r0, Index n, const Index *cols, Index count,
                const Real *wInt, Real *bwInt, const Real *wv0,
                Real accOut[4][4])
{
    const Real *r1 = r0 + n;
    const Real *r2 = r1 + n;
    const Real *r3 = r2 + n;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    const __m256d v0 = _mm256_loadu_pd(wv0);
    const __m256d v1 = _mm256_loadu_pd(wv0 + 4);
    const __m256d v2 = _mm256_loadu_pd(wv0 + 8);
    const __m256d v3 = _mm256_loadu_pd(wv0 + 12);
    for (Index k = 0; k < count; ++k) {
        const Index j = cols[k];
        const __m256d wj = _mm256_loadu_pd(wInt + 4 * j);
        const __m256d l0 = _mm256_set1_pd(r0[j]);
        const __m256d l1 = _mm256_set1_pd(r1[j]);
        const __m256d l2 = _mm256_set1_pd(r2[j]);
        const __m256d l3 = _mm256_set1_pd(r3[j]);
        a0 = _mm256_add_pd(a0, _mm256_mul_pd(l0, wj));
        a1 = _mm256_add_pd(a1, _mm256_mul_pd(l1, wj));
        a2 = _mm256_add_pd(a2, _mm256_mul_pd(l2, wj));
        a3 = _mm256_add_pd(a3, _mm256_mul_pd(l3, wj));
        __m256d b = _mm256_loadu_pd(bwInt + 4 * j);
        b = _mm256_add_pd(b, _mm256_mul_pd(l0, v0));
        b = _mm256_add_pd(b, _mm256_mul_pd(l1, v1));
        b = _mm256_add_pd(b, _mm256_mul_pd(l2, v2));
        b = _mm256_add_pd(b, _mm256_mul_pd(l3, v3));
        _mm256_storeu_pd(bwInt + 4 * j, b);
    }
    _mm256_storeu_pd(accOut[0], a0);
    _mm256_storeu_pd(accOut[1], a1);
    _mm256_storeu_pd(accOut[2], a2);
    _mm256_storeu_pd(accOut[3], a3);
}
#endif

} // namespace

TemporalLinkage::TemporalLinkage(Index slots, Real skipThreshold,
                                 bool denseSweep)
    : slots_(slots), skipThreshold_(skipThreshold), denseSweep_(denseSweep),
      linkage_(slots, slots), precedence_(slots), rowMass_(slots)
{
    HIMA_ASSERT(slots_ > 0, "linkage needs at least one slot");
    HIMA_ASSERT(skipThreshold_ >= 0.0, "negative linkage skip threshold");
    activeRows_.reserve(slots_);
    touched_.assign(slots_, 0);
    touchedList_.reserve(slots_);
}

Index
TemporalLinkage::gatherActiveRows(const Real *writeWeighting)
{
    activeRows_.clear();  // keeps the reserved capacity — no alloc
    touchedList_.clear(); // likewise
    const Real t = skipThreshold_;
    const Real *mass = rowMass_.data();
    for (Index i = 0; i < slots_; ++i) {
        const bool writing = writeWeighting[i] > t;
        if (writing)
            touched_[i] = 1;
        if (denseSweep_ || touched_[i])
            touchedList_.push_back(i);
        if (denseSweep_ || mass[i] > t || writing)
            activeRows_.push_back(i);
    }
    touchedListValid_ = true;
    return static_cast<Index>(activeRows_.size());
}

const std::vector<Index> &
TemporalLinkage::touchedSlots() const
{
    if (!touchedListValid_) {
        touchedList_.clear();
        for (Index i = 0; i < slots_; ++i)
            if (denseSweep_ || touched_[i])
                touchedList_.push_back(i);
        touchedListValid_ = true;
    }
    return touchedList_;
}

void
TemporalLinkage::updateLinkage(const Vector &writeWeighting,
                               KernelProfiler *profiler)
{
    HIMA_ASSERT(writeWeighting.size() == slots_, "write weighting length");

    std::optional<KernelScope> scope;
    if (profiler)
        scope.emplace(*profiler, Kernel::Linkage);

    // L[i][j] <- (1 - w[i] - w[j]) L[i][j] + w[i] p[j], diagonal zeroed,
    // over the active rows and touched columns only. An inactive row
    // (mass and write weight both at or below the threshold) is exactly
    // zero at threshold 0 — its update computes (1 - 0 - w[j])*0 +
    // 0*p[j] = 0 — and an untouched column j has row[j] == 0 and
    // p[j] == 0, so its update computes (1 - wi - 0)*0 + wi*0 = 0;
    // skipping both is bit-identical. Above 0 both skips are the
    // paper-style approximation.
    const Real *w = writeWeighting.data();
    const Real *p = precedence_.data();
    Real *L = linkage_.data();
    const Index numActive = gatherActiveRows(w);
    const Index *cols = touchedList_.data();
    const Index tcount = static_cast<Index>(touchedList_.size());
    const bool fullCols = tcount == slots_;
    for (Index k = 0; k < numActive; ++k) {
        const Index i = activeRows_[k];
        const Real wi = w[i];
        Real *row = L + i * slots_;
        if (fullCols) {
            for (Index j = 0; j < slots_; ++j)
                row[j] = (1.0 - wi - w[j]) * row[j] + wi * p[j];
        } else {
            for (Index c = 0; c < tcount; ++c) {
                const Index j = cols[c];
                row[j] = (1.0 - wi - w[j]) * row[j] + wi * p[j];
            }
        }
        row[i] = 0.0;
        rowMass_[i] = fullCols ? rowMassOf(row, slots_)
                               : rowMassOfSparse(row, cols, tcount);
    }

    if (profiler) {
        auto &c = profiler->at(Kernel::Linkage);
        const std::uint64_t n2 = static_cast<std::uint64_t>(slots_) * slots_;
        c.elementOps += 4 * n2;          // sub, sub, mult, mac per cell
        c.stateMemAccesses += 2 * n2 + 2 * slots_; // L rd+wr, w and p reads
        const std::uint64_t skipped = slots_ - numActive;
        c.skippedRows += skipped;
        c.skippedOps += skipped * 4 * static_cast<std::uint64_t>(slots_);
        // Column skips on the rows that were visited.
        c.skippedOps += static_cast<std::uint64_t>(numActive) * 4 *
                        (slots_ - tcount);
    }
}

void
TemporalLinkage::updatePrecedence(const Vector &writeWeighting,
                                  KernelProfiler *profiler)
{
    HIMA_ASSERT(writeWeighting.size() == slots_, "write weighting length");

    std::optional<KernelScope> scope;
    if (profiler)
        scope.emplace(*profiler, Kernel::Precedence);

    const Real writeSum = writeWeighting.sum();
    const Real keep = 1.0 - writeSum;
    const Real *w = writeWeighting.data();
    Real *p = precedence_.data();
    for (Index i = 0; i < slots_; ++i)
        p[i] = keep * p[i] + w[i];

    if (profiler) {
        auto &c = profiler->at(Kernel::Precedence);
        c.elementOps += 3 * slots_; // acc-sum + scale + add
        c.stateMemAccesses += 3 * slots_;
    }
}

Vector
TemporalLinkage::forwardWeighting(const Vector &prevReadWeighting,
                                  KernelProfiler *profiler) const
{
    Vector f;
    forwardWeightingInto(prevReadWeighting, f, profiler);
    return f;
}

Vector
TemporalLinkage::backwardWeighting(const Vector &prevReadWeighting,
                                   KernelProfiler *profiler) const
{
    Vector b;
    backwardWeightingInto(prevReadWeighting, b, profiler);
    return b;
}

void
TemporalLinkage::forwardWeightingInto(const Vector &prevReadWeighting,
                                      Vector &f,
                                      KernelProfiler *profiler) const
{
    HIMA_ASSERT(prevReadWeighting.size() == slots_, "read weighting length");

    std::optional<KernelScope> scope;
    if (profiler)
        scope.emplace(*profiler, Kernel::ForwardBackward);

    // f = L w_prev, sweeping only rows that carry mass and, within a
    // row, only the touched columns. A skipped row's dot product would
    // be +0.0 exactly at threshold 0 (all entries are zero), and a
    // skipped column's term is +0.0 (untouched columns are exactly
    // zero); the surviving per-row accumulation order is matVecInto's.
    f.resize(slots_);
    const Real *pm = linkage_.data();
    const Real *px = prevReadWeighting.data();
    const Real *mass = rowMass_.data();
    const std::vector<Index> &tl = touchedSlots();
    const Index *cols = tl.data();
    const Index tcount = static_cast<Index>(tl.size());
    const bool fullCols = tcount == slots_;
    const Real t = skipThreshold_;
    Real *py = f.data();
    Index skipped = 0;
    for (Index r = 0; r < slots_; ++r) {
        if (!denseSweep_ && mass[r] <= t) {
            py[r] = 0.0;
            ++skipped;
            continue;
        }
        const Real *row = pm + r * slots_;
        Real acc = 0.0;
        if (fullCols) {
            for (Index c = 0; c < slots_; ++c)
                acc += row[c] * px[c];
        } else {
            for (Index k = 0; k < tcount; ++k)
                acc += row[cols[k]] * px[cols[k]];
        }
        py[r] = acc;
    }
    if (profiler) {
        auto &c = profiler->at(Kernel::ForwardBackward);
        const std::uint64_t n2 = static_cast<std::uint64_t>(slots_) * slots_;
        c.macOps += n2;
        c.stateMemAccesses += n2 + 2 * slots_;
        c.skippedRows += skipped;
        c.skippedOps +=
            static_cast<std::uint64_t>(skipped) * slots_;
        c.skippedOps += static_cast<std::uint64_t>(slots_ - skipped) *
                        (slots_ - tcount);
    }
}

void
TemporalLinkage::backwardWeightingInto(const Vector &prevReadWeighting,
                                       Vector &b,
                                       KernelProfiler *profiler) const
{
    HIMA_ASSERT(prevReadWeighting.size() == slots_, "read weighting length");

    std::optional<KernelScope> scope;
    if (profiler)
        scope.emplace(*profiler, Kernel::ForwardBackward);

    // The hardware path is transpose + mat-vec (Table 1); the functional
    // path fuses them to avoid materializing L^T, and additionally skips
    // massless rows and untouched columns — the column-sparse backward
    // sweep: instead of scanning each visited row's dense columns, it
    // scatters into the touched columns only (the transpose of the
    // active-row structure). A skipped row contributes row[c]*xv = +0.0
    // to every accumulator at threshold 0 and a skipped column's output
    // stays the +0.0 it was zero-filled with, so dropping both never
    // changes a bit. Visited rows accumulate in ascending-r order and
    // visited columns in ascending-c order, matTVecInto's order.
    b.resize(slots_);
    const Real *pm = linkage_.data();
    const Real *px = prevReadWeighting.data();
    const Real *mass = rowMass_.data();
    const std::vector<Index> &tl = touchedSlots();
    const Index *cols = tl.data();
    const Index tcount = static_cast<Index>(tl.size());
    const bool fullCols = tcount == slots_;
    const Real t = skipThreshold_;
    Real *py = b.data();
    for (Index c = 0; c < slots_; ++c)
        py[c] = 0.0;
    Index skipped = 0;
    for (Index r = 0; r < slots_; ++r) {
        if (!denseSweep_ && mass[r] <= t) {
            ++skipped;
            continue;
        }
        const Real xv = px[r];
        const Real *row = pm + r * slots_;
        if (fullCols) {
            for (Index c = 0; c < slots_; ++c)
                py[c] += row[c] * xv;
        } else {
            for (Index k = 0; k < tcount; ++k)
                py[cols[k]] += row[cols[k]] * xv;
        }
    }
    if (profiler) {
        auto &c = profiler->at(Kernel::ForwardBackward);
        const std::uint64_t n2 = static_cast<std::uint64_t>(slots_) * slots_;
        c.macOps += n2;
        c.stateMemAccesses += n2 + 2 * slots_;
        c.skippedRows += skipped;
        c.skippedOps +=
            static_cast<std::uint64_t>(skipped) * slots_;
        c.skippedOps += static_cast<std::uint64_t>(slots_ - skipped) *
                        (slots_ - tcount);
    }
}

void
TemporalLinkage::updateAndRead(const Vector &writeWeighting,
                               const std::vector<Vector> &prevReadWeightings,
                               std::vector<Vector> &forward,
                               std::vector<Vector> &backward,
                               KernelProfiler *profiler)
{
    HIMA_ASSERT(writeWeighting.size() == slots_, "write weighting length");
    const Index heads = prevReadWeightings.size();
    HIMA_ASSERT(heads > 0, "need at least one read head");
    if (forward.size() != heads)
        forward.resize(heads);
    if (backward.size() != heads)
        backward.resize(heads);
    for (Index h = 0; h < heads; ++h) {
        HIMA_ASSERT(prevReadWeightings[h].size() == slots_,
                    "read weighting length");
        forward[h].resize(slots_);
        backward[h].resize(slots_);
    }

    // Interleave the previous read weightings (lane h of word j =
    // head h, slot j) and zero the interleaved backward accumulators.
    // O(RN) — negligible next to the O(A*N) sweep it enables.
    interleavedReads_.resize(slots_ * heads);
    interleavedBackward_.assign(slots_ * heads, 0.0);
    for (Index h = 0; h < heads; ++h) {
        const Real *wr = prevReadWeightings[h].data();
        for (Index j = 0; j < slots_; ++j)
            interleavedReads_[j * heads + h] = wr[j];
    }

    // Activity is decided once per step, before the sweep, from the
    // cached row masses and the *current* write weighting — a row
    // receiving its first mass this step is swept this step.
    gatherActiveRows(writeWeighting.data());

    switch (heads) {
      case 1:
        updateAndReadImpl<1>(writeWeighting, forward, backward, profiler);
        break;
      case 2:
        updateAndReadImpl<2>(writeWeighting, forward, backward, profiler);
        break;
      case 4:
        updateAndReadImpl<4>(writeWeighting, forward, backward, profiler);
        break;
      case 8:
        updateAndReadImpl<8>(writeWeighting, forward, backward, profiler);
        break;
      default:
        updateAndReadImpl<0>(writeWeighting, forward, backward, profiler);
        break;
    }
}

/**
 * The fused sweep body. R is the compile-time head count (0 = runtime
 * fallback): a constant trip count lets the compiler unroll the per-head
 * lane loops and fuse them into SIMD over the interleaved buffers. Each
 * head's accumulation chain keeps its own lane and its own order, and
 * multiplies/adds round separately (FMA contraction is off), so the
 * results are bit-identical to the standalone kernels at any R.
 */
template <Index R>
void
TemporalLinkage::updateAndReadImpl(const Vector &writeWeighting,
                                   std::vector<Vector> &forward,
                                   std::vector<Vector> &backward,
                                   KernelProfiler *profiler)
{
    const Index heads = R == 0 ? forward.size() : R;
    const Real *w = writeWeighting.data();
    const Real *p = precedence_.data();
    const Real *wInt = interleavedReads_.data();
    Real *bwInt = interleavedBackward_.data();
    Real *L = linkage_.data();
    const Index numActive = static_cast<Index>(activeRows_.size());

    // Column-sparse traversal: every inner loop walks the touched
    // columns (rebuilt by gatherActiveRows just before this call)
    // instead of all N. When every slot is touched the loops fall back
    // to the contiguous dense kernels — same order, same bits, no
    // index indirection.
    const Index *cols = touchedList_.data();
    const Index tcount = static_cast<Index>(touchedList_.size());
    const bool fullCols = tcount == slots_;

    // Rows the sweep skips are exactly zero at threshold 0 (treated as
    // zero above it): their forward dots are +0.0 and they contribute
    // nothing to the interleaved backward lanes, so zero-fill the
    // forward outputs once and let the sweep overwrite only the rows it
    // visits. O(RN), like the de-interleave below.
    for (Index h = 0; h < heads; ++h)
        forward[h].fill(0.0);

    // Row-blocked so the read stage re-traverses freshly-updated rows
    // out of L1; L streams through DRAM once per step instead of once
    // per kernel invocation. Four rows x 8 KB stays cache-resident.
    // Blocks are runs of *consecutive* active rows (up to kBlock long),
    // so an all-active matrix blocks exactly as the dense sweep did and
    // a sparse one pays only for the rows it visits. Skipped rows never
    // enter a timed region — their wall-clock attribution is zero.
    constexpr Index kBlock = 4;
    using Clock = std::chrono::steady_clock;
    const bool timed = profiler != nullptr;
    std::uint64_t updateNs = 0;
    std::uint64_t readNs = 0;

    Index cursor = 0;
    while (cursor < numActive) {
        const Index blockStart = activeRows_[cursor];
        Index blockLen = 1;
        while (blockLen < kBlock && cursor + blockLen < numActive &&
               activeRows_[cursor + blockLen] == blockStart + blockLen)
            ++blockLen;
        cursor += blockLen;
        const Index blockEnd = blockStart + blockLen;
        const auto t0 = timed ? Clock::now() : Clock::time_point{};

        // HR.(1): update rows [blockStart, blockEnd) of L, exactly as
        // updateLinkage() does, refreshing each row's mass cache from
        // the finished row (ascending j — restoreState()'s order).
        // Untouched columns hold +0.0 in row, p and w's touched test,
        // so iterating only the touched columns is bit-identical.
        for (Index i = blockStart; i < blockEnd; ++i) {
            const Real wi = w[i];
            Real *row = L + i * slots_;
            if (fullCols) {
                for (Index j = 0; j < slots_; ++j)
                    row[j] = (1.0 - wi - w[j]) * row[j] + wi * p[j];
            } else {
                for (Index k = 0; k < tcount; ++k) {
                    const Index j = cols[k];
                    row[j] = (1.0 - wi - w[j]) * row[j] + wi * p[j];
                }
            }
            row[i] = 0.0;
            rowMass_[i] = fullCols ? rowMassOf(row, slots_)
                                   : rowMassOfSparse(row, cols, tcount);
        }
        const auto t1 = timed ? Clock::now() : Clock::time_point{};

        // HR.(3): fold the freshly-updated rows into every head's
        // forward and backward weightings. forward[h][i] accumulates
        // over j in ascending order (matVec's order) and the
        // interleaved backward lanes accumulate row contributions in
        // ascending i (matTVec's order).
#if defined(__AVX2__)
        if constexpr (R == 4) {
            if (blockEnd - blockStart == 4) {
                Real acc[4][4];
                if (fullCols)
                    readQuad4(L + blockStart * slots_, slots_, wInt, bwInt,
                              wInt + blockStart * 4, acc);
                else
                    readQuad4Sparse(L + blockStart * slots_, slots_, cols,
                                    tcount, wInt, bwInt,
                                    wInt + blockStart * 4, acc);
                for (Index k = 0; k < 4; ++k)
                    for (Index h = 0; h < 4; ++h)
                        forward[h][blockStart + k] = acc[k][h];
                const auto t2q =
                    timed ? Clock::now() : Clock::time_point{};
                updateNs +=
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        t1 - t0).count();
                readNs +=
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        t2q - t1).count();
                continue;
            }
        }
#endif
        for (Index i = blockStart; i < blockEnd; ++i) {
            const Real *row = L + i * slots_;
            if (R != 0) {
                Real acc[R == 0 ? 1 : R];
                if (fullCols)
                    readRow<R == 0 ? 1 : R>(row, slots_, wInt, bwInt,
                                            wInt + i * heads, acc);
                else
                    readRowSparse<R == 0 ? 1 : R>(row, cols, tcount, wInt,
                                                  bwInt, wInt + i * heads,
                                                  acc);
                for (Index h = 0; h < heads; ++h)
                    forward[h][i] = acc[h];
            } else {
                // Runtime-R fallback: same math, lane loop unbounded.
                for (Index h = 0; h < heads; ++h) {
                    const Real hv = wInt[i * heads + h];
                    Real a = 0.0;
                    if (fullCols) {
                        for (Index j = 0; j < slots_; ++j) {
                            a += row[j] * wInt[j * heads + h];
                            bwInt[j * heads + h] += row[j] * hv;
                        }
                    } else {
                        for (Index k = 0; k < tcount; ++k) {
                            const Index j = cols[k];
                            a += row[j] * wInt[j * heads + h];
                            bwInt[j * heads + h] += row[j] * hv;
                        }
                    }
                    forward[h][i] = a;
                }
            }
        }
        const auto t2 = timed ? Clock::now() : Clock::time_point{};
        updateNs += std::chrono::duration_cast<std::chrono::nanoseconds>(
                        t1 - t0).count();
        readNs += std::chrono::duration_cast<std::chrono::nanoseconds>(
                      t2 - t1).count();
    }

    // De-interleave the backward lanes.
    for (Index h = 0; h < heads; ++h) {
        Real *bw = backward[h].data();
        for (Index j = 0; j < slots_; ++j)
            bw[j] = bwInt[j * heads + h];
    }

    if (profiler) {
        const std::uint64_t n2 = static_cast<std::uint64_t>(slots_) * slots_;
        const std::uint64_t skipped = slots_ - numActive;
        auto &link = profiler->at(Kernel::Linkage);
        link.invocations += 1;
        link.nanoseconds += updateNs;
        link.elementOps += 4 * n2;
        link.stateMemAccesses += 2 * n2 + 2 * slots_;
        link.skippedRows += skipped;
        link.skippedOps += skipped * 4 * static_cast<std::uint64_t>(slots_);
        link.skippedOps += static_cast<std::uint64_t>(numActive) * 4 *
                           (slots_ - tcount);
        auto &fb = profiler->at(Kernel::ForwardBackward);
        fb.invocations += 2 * heads; // mirrors the 2R standalone calls
        fb.nanoseconds += readNs;
        fb.macOps += 2 * heads * n2;
        fb.stateMemAccesses += 2 * heads * (n2 + 2 * slots_);
        fb.skippedRows += 2 * heads * skipped;
        fb.skippedOps +=
            2 * heads * skipped * static_cast<std::uint64_t>(slots_);
        fb.skippedOps += 2 * heads * static_cast<std::uint64_t>(numActive) *
                         (slots_ - tcount);
    }
}

void
TemporalLinkage::reset()
{
    linkage_.fill(0.0);
    precedence_.fill(0.0);
    // Every row is massless again: rows never written after this reset
    // stay exactly zero and are skipped by every sweep. The touched set
    // empties with them — it only ever grows within an episode.
    rowMass_.fill(0.0);
    std::fill(touched_.begin(), touched_.end(), 0);
    touchedListValid_ = false;
}

void
TemporalLinkage::rebuildMassAndMarkTouched()
{
    // The mass rebuild uses the sweep's own ascending-j summation, so a
    // mid-episode restore makes bit-identical skip decisions to the
    // undisturbed run it snapshots. Marking every column that holds a
    // nonzero entry keeps the sweeps' "untouched columns are exactly
    // zero" invariant even for hand-edited snapshots.
    for (Index i = 0; i < slots_; ++i) {
        const Real *row = linkage_.data() + i * slots_;
        Real acc = 0.0;
        for (Index j = 0; j < slots_; ++j) {
            const Real a = std::fabs(row[j]);
            acc += a;
            if (a != 0.0)
                touched_[j] = 1;
        }
        rowMass_[i] = acc;
    }
    touchedListValid_ = false;
}

void
TemporalLinkage::restoreState(const Vector &linkageFlat,
                              const Vector &precedence,
                              const std::vector<Index> &touchedSlots)
{
    HIMA_ASSERT(linkageFlat.size() == slots_ * slots_,
                "linkage restore: %zu reals for %zu slots",
                linkageFlat.size(), slots_);
    HIMA_ASSERT(precedence.size() == slots_,
                "precedence restore: %zu reals for %zu slots",
                precedence.size(), slots_);
    std::copy(linkageFlat.begin(), linkageFlat.end(), linkage_.data());
    std::copy(precedence.begin(), precedence.end(), precedence_.begin());
    std::fill(touched_.begin(), touched_.end(), 0);
    Index prev = 0;
    for (Index k = 0; k < touchedSlots.size(); ++k) {
        const Index s = touchedSlots[k];
        HIMA_ASSERT(s < slots_ && (k == 0 || s > prev),
                    "touched-slot restore: index %zu out of order or out "
                    "of range for %zu slots", s, slots_);
        touched_[s] = 1;
        prev = s;
    }
    rebuildMassAndMarkTouched();
}

void
TemporalLinkage::restoreState(const Vector &linkageFlat,
                              const Vector &precedence)
{
    static const std::vector<Index> kNone;
    restoreState(linkageFlat, precedence, kNone);
    // Without a snapshotted touched set, slots whose precedence still
    // carries mass must count as touched: their columns receive
    // w[i]*p[j] on the very next update. (See the header comment for
    // the positive-threshold caveat.)
    for (Index j = 0; j < slots_; ++j)
        if (precedence_[j] != 0.0)
            touched_[j] = 1;
    touchedListValid_ = false;
}

} // namespace hima
