#include "dnc/temporal_linkage.h"

#include <memory>

namespace hima {

TemporalLinkage::TemporalLinkage(Index slots)
    : slots_(slots), linkage_(slots, slots), precedence_(slots)
{
    HIMA_ASSERT(slots_ > 0, "linkage needs at least one slot");
}

void
TemporalLinkage::updateLinkage(const Vector &writeWeighting,
                               KernelProfiler *profiler)
{
    HIMA_ASSERT(writeWeighting.size() == slots_, "write weighting length");

    std::unique_ptr<KernelScope> scope;
    if (profiler)
        scope = std::make_unique<KernelScope>(*profiler, Kernel::Linkage);

    // L[i][j] <- (1 - w[i] - w[j]) L[i][j] + w[i] p[j], diagonal zeroed.
    for (Index i = 0; i < slots_; ++i) {
        const Real wi = writeWeighting[i];
        for (Index j = 0; j < slots_; ++j) {
            if (i == j) {
                linkage_(i, j) = 0.0;
                continue;
            }
            linkage_(i, j) = (1.0 - wi - writeWeighting[j]) * linkage_(i, j)
                           + wi * precedence_[j];
        }
    }

    if (profiler) {
        auto &c = profiler->at(Kernel::Linkage);
        const std::uint64_t n2 = static_cast<std::uint64_t>(slots_) * slots_;
        c.elementOps += 4 * n2;          // sub, sub, mult, mac per cell
        c.stateMemAccesses += 2 * n2 + 2 * slots_; // L rd+wr, w and p reads
    }
}

void
TemporalLinkage::updatePrecedence(const Vector &writeWeighting,
                                  KernelProfiler *profiler)
{
    HIMA_ASSERT(writeWeighting.size() == slots_, "write weighting length");

    std::unique_ptr<KernelScope> scope;
    if (profiler)
        scope = std::make_unique<KernelScope>(*profiler, Kernel::Precedence);

    const Real writeSum = writeWeighting.sum();
    const Real keep = 1.0 - writeSum;
    for (Index i = 0; i < slots_; ++i)
        precedence_[i] = keep * precedence_[i] + writeWeighting[i];

    if (profiler) {
        auto &c = profiler->at(Kernel::Precedence);
        c.elementOps += 3 * slots_; // acc-sum + scale + add
        c.stateMemAccesses += 3 * slots_;
    }
}

Vector
TemporalLinkage::forwardWeighting(const Vector &prevReadWeighting,
                                  KernelProfiler *profiler) const
{
    HIMA_ASSERT(prevReadWeighting.size() == slots_, "read weighting length");

    std::unique_ptr<KernelScope> scope;
    if (profiler)
        scope = std::make_unique<KernelScope>(*profiler,
                                              Kernel::ForwardBackward);
    Vector f = matVec(linkage_, prevReadWeighting);
    if (profiler) {
        auto &c = profiler->at(Kernel::ForwardBackward);
        const std::uint64_t n2 = static_cast<std::uint64_t>(slots_) * slots_;
        c.macOps += n2;
        c.stateMemAccesses += n2 + 2 * slots_;
    }
    return f;
}

Vector
TemporalLinkage::backwardWeighting(const Vector &prevReadWeighting,
                                   KernelProfiler *profiler) const
{
    HIMA_ASSERT(prevReadWeighting.size() == slots_, "read weighting length");

    std::unique_ptr<KernelScope> scope;
    if (profiler)
        scope = std::make_unique<KernelScope>(*profiler,
                                              Kernel::ForwardBackward);
    // The hardware path is transpose + mat-vec (Table 1); the functional
    // path fuses them to avoid materializing L^T.
    Vector b = matTVec(linkage_, prevReadWeighting);
    if (profiler) {
        auto &c = profiler->at(Kernel::ForwardBackward);
        const std::uint64_t n2 = static_cast<std::uint64_t>(slots_) * slots_;
        c.macOps += n2;
        c.stateMemAccesses += n2 + 2 * slots_;
    }
    return b;
}

void
TemporalLinkage::reset()
{
    linkage_.fill(0.0);
    precedence_.fill(0.0);
}

} // namespace hima
