#include "dnc/memory_unit.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "approx/fixed_point.h"
#include "common/math_util.h"

namespace hima {

MemoryUnit::MemoryUnit(const DncConfig &config)
    : config_(config),
      addressing_(config.approximateSoftmax, config.softmaxSegments,
                  config.readSkipThreshold, config.linkageDenseSweep),
      usageSorter_(referenceUsageSort),
      skimK_(static_cast<Index>(config.skimRate *
                                static_cast<Real>(config.memoryRows))),
      memory_(config.memoryRows, config.memoryWidth),
      rowNorms_(config.memoryRows),
      usage_(config.memoryRows),
      linkage_(config.memoryRows, config.linkageSkipThreshold,
               config.linkageDenseSweep),
      writeWeighting_(config.memoryRows),
      readWeightings_(config.readHeads, Vector(config.memoryRows)),
      ws_(config.memoryRows, config.memoryWidth, config.readHeads)
{
    config_.validate();
    sortRecords_.reserve(config.memoryRows);
}

void
MemoryUnit::setUsageSorter(UsageSortFn sorter)
{
    HIMA_ASSERT(static_cast<bool>(sorter), "null usage sorter");
    usageSorter_ = std::move(sorter);
    customSorter_ = true;
}

MemoryReadout
MemoryUnit::step(const InterfaceVector &iface)
{
    MemoryReadout out;
    stepInto(iface, out);
    return out;
}

void
MemoryUnit::stepInto(const InterfaceVector &iface, MemoryReadout &out)
{
    validateInterface(iface, config_);

    const Index n = config_.memoryRows;
    const Index w = config_.memoryWidth;
    const Index r = config_.readHeads;

    // Size the readout; a no-op (and allocation-free) once `out` has
    // been through one step with these shapes.
    out.writeWeighting.resize(n);
    if (out.readVectors.size() != r)
        out.readVectors.resize(r);
    if (out.readWeightings.size() != r)
        out.readWeightings.resize(r);
    for (Index head = 0; head < r; ++head) {
        out.readVectors[head].resize(w);
        out.readWeightings[head].resize(n);
    }

    softWrite(iface, out.writeWeighting);

    // HR.(1)-(3): linkage must see the *previous* precedence, so the
    // linkage update precedes the precedence update. The update and the
    // per-head forward/backward weightings run as one fused traversal
    // of L (bit-identical to the separate kernels); the soft-read loop
    // below consumes the precomputed weightings.
    linkage_.updateAndRead(out.writeWeighting, readWeightings_,
                           ws_.forwardW, ws_.backwardW, &profiler_);
    linkage_.updatePrecedence(out.writeWeighting, &profiler_);

    std::copy(out.writeWeighting.begin(), out.writeWeighting.end(),
              writeWeighting_.begin());

    softRead(iface, out);
}

void
MemoryUnit::softWrite(const InterfaceVector &iface, Vector &writeWeighting)
{
    const Index n = config_.memoryRows;

    // CW.(1)-(2): content-based write weighting, using the maintained
    // row-norm cache instead of an O(N*W) recompute.
    addressing_.weightingInto(memory_, iface.writeKey, iface.writeStrength,
                              &rowNorms_, ws_.scores, ws_.contentW,
                              &profiler_);

    // HW.(1)-(2): retention then usage update (uses *previous* write and
    // read weightings).
    retentionInto(iface.freeGates, readWeightings_, ws_.retention,
                  &profiler_);
    updateUsageInPlace(usage_, writeWeighting_, ws_.retention, &profiler_);

    // HW.(2)-(3): usage sort + allocation weighting (optionally skimmed).
    allocationWeightingInto(usage_, customSorter_ ? &usageSorter_ : nullptr,
                            skimK_, sortRecords_, ws_.allocW, &profiler_);

    // WM: merge content and allocation paths under the gates.
    {
        KernelScope scope(profiler_, Kernel::WriteMerge);
        const Real ga = iface.allocationGate;
        const Real gw = iface.writeGate;
        const Real *alloc = ws_.allocW.data();
        const Real *content = ws_.contentW.data();
        Real *ww = writeWeighting.data();
        for (Index i = 0; i < n; ++i)
            ww[i] = gw * (ga * alloc[i] + (1.0 - ga) * content[i]);
        auto &c = profiler_.at(Kernel::WriteMerge);
        c.elementOps += 3 * n;
        c.stateMemAccesses += 3 * n;
    }

    // MW: apply erase then additive write to the external memory.
    memoryWrite(writeWeighting, iface.eraseVector, iface.writeVector);

    if (config_.fixedPoint)
        quantizeInPlace(writeWeighting);
}

void
MemoryUnit::memoryWrite(const Vector &writeWeighting, const Vector &erase,
                        const Vector &write)
{
    KernelScope scope(profiler_, Kernel::MemoryWrite);

    const Index n = config_.memoryRows;
    const Index w = config_.memoryWidth;
    const Real threshold = config_.writeSkipThreshold;
    const bool fixed = config_.fixedPoint;

    // M <- M .* (E - w_w e^T) + w_w v^T, computed row-at-a-time: the
    // outer products never materialize, matching the PE-array dataflow.
    // Each touched row's L2 norm is refreshed in the same pass, which is
    // what keeps the content-addressing Normalize stage O(touched * W)
    // in simulator time. Skipped rows (weight <= threshold; exactly the
    // zero-weight rows at the default threshold of 0) are unmodified, so
    // their cached norms stay valid by construction.
    const Real *ww = writeWeighting.data();
    const Real *pe = erase.data();
    const Real *pv = write.data();
    for (Index i = 0; i < n; ++i) {
        const Real wi = ww[i];
        if (wi <= threshold)
            continue;
        Real *row = memory_.rowPtr(i);
        Real acc = 0.0;
        for (Index c = 0; c < w; ++c) {
            Real v = row[c] * (1.0 - wi * pe[c]) + wi * pv[c];
            if (fixed)
                v = Fix32::fromReal(v).toReal();
            row[c] = v;
            acc += v * v;
        }
        rowNorms_[i] = std::sqrt(acc);
    }

    // The hardware writes (and, in fixed-point mode, requantizes) every
    // row each step; charge the full cost regardless of software skips.
    auto &counters = profiler_.at(Kernel::MemoryWrite);
    counters.elementOps += 4 * static_cast<std::uint64_t>(n) * w;
    counters.extMemAccesses += 2 * static_cast<std::uint64_t>(n) * w;
    counters.stateMemAccesses += n; // the write weighting
}

void
MemoryUnit::softRead(const InterfaceVector &iface, MemoryReadout &out)
{
    const Index n = config_.memoryRows;
    const Index w = config_.memoryWidth;
    const Index r = config_.readHeads;

    for (Index head = 0; head < r; ++head) {
        // CR.(1)-(2): content-based read weighting. (HR.(3) forward/
        // backward were precomputed by the fused linkage sweep.)
        addressing_.weightingInto(memory_, iface.readKeys[head],
                                  iface.readStrengths[head], &rowNorms_,
                                  ws_.scores, ws_.contentW, &profiler_);

        // RM: mode-weighted merge onto the simplex.
        Vector &weighting = out.readWeightings[head];
        {
            KernelScope scope(profiler_, Kernel::ReadMerge);
            const ReadMode &mode = iface.readModes[head];
            const Real *fwd = ws_.forwardW[head].data();
            const Real *bwd = ws_.backwardW[head].data();
            const Real *content = ws_.contentW.data();
            Real *pw = weighting.data();
            for (Index i = 0; i < n; ++i) {
                pw[i] = mode.backward * bwd[i]
                      + mode.content * content[i]
                      + mode.forward * fwd[i];
            }
            auto &c = profiler_.at(Kernel::ReadMerge);
            c.elementOps += 3 * n;
            c.stateMemAccesses += 4 * n;
        }
        if (config_.fixedPoint)
            quantizeInPlace(weighting);

        // MR: v_r = M^T w_r. Rows whose cached norm is at or below the
        // read skip threshold are never-written (all-zero) rows at the
        // default threshold of 0: their contribution to every output
        // word is +0.0 exactly, so skipping them is bit-identical (the
        // weighting is nonnegative). The hardware still reads all N
        // rows — only simulator work is skipped.
        {
            KernelScope scope(profiler_, Kernel::MemoryRead);
            Index skipped = 0;
            if (config_.linkageDenseSweep)
                matTVecInto(memory_, weighting, out.readVectors[head]);
            else
                skipped = matTVecSparseInto(memory_, weighting, rowNorms_,
                                            config_.readSkipThreshold,
                                            out.readVectors[head]);
            auto &c = profiler_.at(Kernel::MemoryRead);
            c.macOps += static_cast<std::uint64_t>(n) * w;
            c.extMemAccesses += static_cast<std::uint64_t>(n) * w;
            c.stateMemAccesses += n;
            c.skippedRows += skipped;
            c.skippedOps += static_cast<std::uint64_t>(skipped) * w;
        }
        if (config_.fixedPoint)
            quantizeInPlace(out.readVectors[head]);

        std::copy(weighting.begin(), weighting.end(),
                  readWeightings_[head].begin());
    }
}

void
MemoryUnit::reset()
{
    memory_.fill(0.0);
    rowNorms_.fill(0.0);
    usage_.fill(0.0);
    linkage_.reset();
    writeWeighting_.fill(0.0);
    for (auto &rw : readWeightings_)
        rw.fill(0.0);
}

void
MemoryTileState::sizeFor(const DncConfig &config)
{
    const Index n = config.memoryRows;
    memory.resize(n * config.memoryWidth);
    rowNorms.resize(n);
    usage.resize(n);
    linkage.resize(n * n);
    precedence.resize(n);
    writeWeighting.resize(n);
    if (readWeightings.size() != config.readHeads)
        readWeightings.resize(config.readHeads);
    for (auto &rw : readWeightings)
        rw.resize(n);
    // Variable-length (0..N entries); reserving N up front keeps the
    // per-checkpoint refills allocation-free as the set grows.
    touchedSlots.reserve(n);
}

void
MemoryUnit::captureState(MemoryTileState &out) const
{
    out.sizeFor(config_);
    std::copy(memory_.data(), memory_.data() + memory_.size(),
              out.memory.begin());
    std::copy(rowNorms_.begin(), rowNorms_.end(), out.rowNorms.begin());
    std::copy(usage_.begin(), usage_.end(), out.usage.begin());
    const Matrix &link = linkage_.linkage();
    std::copy(link.data(), link.data() + link.size(), out.linkage.begin());
    std::copy(linkage_.precedence().begin(), linkage_.precedence().end(),
              out.precedence.begin());
    std::copy(writeWeighting_.begin(), writeWeighting_.end(),
              out.writeWeighting.begin());
    for (Index h = 0; h < config_.readHeads; ++h)
        std::copy(readWeightings_[h].begin(), readWeightings_[h].end(),
                  out.readWeightings[h].begin());
    const std::vector<Index> &tl = linkage_.touchedSlots();
    out.touchedSlots.assign(tl.begin(), tl.end());
}

void
MemoryUnit::restoreState(const MemoryTileState &state)
{
    const Index n = config_.memoryRows;
    const Index w = config_.memoryWidth;
    HIMA_ASSERT(state.memory.size() == n * w &&
                    state.rowNorms.size() == n && state.usage.size() == n &&
                    state.writeWeighting.size() == n &&
                    state.readWeightings.size() == config_.readHeads,
                "tile restore: snapshot shapes do not match N=%zu W=%zu "
                "R=%zu",
                n, w, config_.readHeads);
    for (const Vector &rw : state.readWeightings)
        HIMA_ASSERT(rw.size() == n, "tile restore: read weighting %zu != %zu",
                    rw.size(), n);
    // Fused restore of the read stage: copy each memory row and rebuild
    // its cached norm in the same pass, instead of one sweep for the
    // matrix and a second for the snapshot's norm vector. The recompute
    // uses memoryWrite's own accumulation (ascending c, acc += v*v,
    // sqrt), so the rebuilt cache — and with it every sparse read-stage
    // skip decision — is bit-identical to the live cache the snapshot
    // was captured from. Snapshot norms are never trusted: sparse
    // checkpoint frames do not even carry them.
    const Real *src = state.memory.data();
    for (Index i = 0; i < n; ++i) {
        Real *row = memory_.rowPtr(i);
        const Real *srow = src + i * w;
        Real acc = 0.0;
        for (Index c = 0; c < w; ++c) {
            const Real v = srow[c];
            row[c] = v;
            acc += v * v;
        }
        rowNorms_[i] = std::sqrt(acc);
    }
    std::copy(state.usage.begin(), state.usage.end(), usage_.begin());
    linkage_.restoreState(state.linkage, state.precedence,
                          state.touchedSlots);
    std::copy(state.writeWeighting.begin(), state.writeWeighting.end(),
              writeWeighting_.begin());
    for (Index h = 0; h < config_.readHeads; ++h)
        std::copy(state.readWeightings[h].begin(),
                  state.readWeightings[h].end(), readWeightings_[h].begin());
}

} // namespace hima
