#include "dnc/memory_unit.h"

#include <memory>

#include "approx/fixed_point.h"
#include "common/math_util.h"

namespace hima {

MemoryUnit::MemoryUnit(const DncConfig &config)
    : config_(config),
      addressing_(config.approximateSoftmax, config.softmaxSegments),
      usageSorter_(referenceUsageSort),
      skimK_(static_cast<Index>(config.skimRate *
                                static_cast<Real>(config.memoryRows))),
      memory_(config.memoryRows, config.memoryWidth),
      usage_(config.memoryRows),
      linkage_(config.memoryRows),
      writeWeighting_(config.memoryRows),
      readWeightings_(config.readHeads, Vector(config.memoryRows))
{
    config_.validate();
}

void
MemoryUnit::setUsageSorter(UsageSortFn sorter)
{
    HIMA_ASSERT(static_cast<bool>(sorter), "null usage sorter");
    usageSorter_ = std::move(sorter);
}

MemoryReadout
MemoryUnit::step(const InterfaceVector &iface)
{
    validateInterface(iface, config_);

    MemoryReadout out;
    const Vector writeWeighting = softWrite(iface);

    // HR.(1)-(2): linkage must see the *previous* precedence, so the
    // linkage update precedes the precedence update.
    linkage_.updateLinkage(writeWeighting, &profiler_);
    linkage_.updatePrecedence(writeWeighting, &profiler_);

    writeWeighting_ = writeWeighting;
    out.writeWeighting = writeWeighting;

    softRead(iface, out);
    return out;
}

Vector
MemoryUnit::softWrite(const InterfaceVector &iface)
{
    const Index n = config_.memoryRows;

    // CW.(1)-(2): content-based write weighting.
    const Vector contentW = addressing_.weighting(
        memory_, iface.writeKey, iface.writeStrength, &profiler_);

    // HW.(1)-(2): retention then usage update (uses *previous* write and
    // read weightings).
    const Vector psi =
        retentionVector(iface.freeGates, readWeightings_, &profiler_);
    usage_ = updateUsage(usage_, writeWeighting_, psi, &profiler_);

    // HW.(2)-(3): usage sort + allocation weighting (optionally skimmed).
    const Vector alloc =
        allocationWeighting(usage_, usageSorter_, skimK_, &profiler_);

    // WM: merge content and allocation paths under the gates.
    Vector writeWeighting(n);
    {
        std::unique_ptr<KernelScope> scope =
            std::make_unique<KernelScope>(profiler_, Kernel::WriteMerge);
        const Real ga = iface.allocationGate;
        const Real gw = iface.writeGate;
        for (Index i = 0; i < n; ++i)
            writeWeighting[i] = gw * (ga * alloc[i] + (1.0 - ga) * contentW[i]);
        auto &c = profiler_.at(Kernel::WriteMerge);
        c.elementOps += 3 * n;
        c.stateMemAccesses += 3 * n;
    }

    // MW: apply erase then additive write to the external memory.
    memoryWrite(writeWeighting, iface.eraseVector, iface.writeVector);

    if (config_.fixedPoint)
        writeWeighting = quantize(writeWeighting);
    return writeWeighting;
}

void
MemoryUnit::memoryWrite(const Vector &writeWeighting, const Vector &erase,
                        const Vector &write)
{
    std::unique_ptr<KernelScope> scope =
        std::make_unique<KernelScope>(profiler_, Kernel::MemoryWrite);

    const Index n = config_.memoryRows;
    const Index w = config_.memoryWidth;
    // M <- M .* (E - w_w e^T) + w_w v^T, computed row-at-a-time: the
    // outer products never materialize, matching the PE-array dataflow.
    for (Index i = 0; i < n; ++i) {
        const Real wi = writeWeighting[i];
        if (wi == 0.0)
            continue;
        for (Index c = 0; c < w; ++c)
            memory_(i, c) = memory_(i, c) * (1.0 - wi * erase[c])
                          + wi * write[c];
    }
    if (config_.fixedPoint)
        memory_ = quantize(memory_);

    auto &counters = profiler_.at(Kernel::MemoryWrite);
    counters.elementOps += 4 * static_cast<std::uint64_t>(n) * w;
    counters.extMemAccesses += 2 * static_cast<std::uint64_t>(n) * w;
    counters.stateMemAccesses += n; // the write weighting
}

void
MemoryUnit::softRead(const InterfaceVector &iface, MemoryReadout &out)
{
    const Index n = config_.memoryRows;
    const Index w = config_.memoryWidth;
    const Index r = config_.readHeads;

    out.readVectors.reserve(r);
    out.readWeightings.reserve(r);

    for (Index head = 0; head < r; ++head) {
        // HR.(3): forward/backward via the linkage matrix.
        const Vector fwd =
            linkage_.forwardWeighting(readWeightings_[head], &profiler_);
        const Vector bwd =
            linkage_.backwardWeighting(readWeightings_[head], &profiler_);

        // CR.(1)-(2): content-based read weighting.
        const Vector content = addressing_.weighting(
            memory_, iface.readKeys[head], iface.readStrengths[head],
            &profiler_);

        // RM: mode-weighted merge onto the simplex.
        Vector weighting(n);
        {
            KernelScope scope(profiler_, Kernel::ReadMerge);
            const ReadMode &mode = iface.readModes[head];
            for (Index i = 0; i < n; ++i) {
                weighting[i] = mode.backward * bwd[i]
                             + mode.content * content[i]
                             + mode.forward * fwd[i];
            }
            auto &c = profiler_.at(Kernel::ReadMerge);
            c.elementOps += 3 * n;
            c.stateMemAccesses += 4 * n;
        }
        if (config_.fixedPoint)
            weighting = quantize(weighting);

        // MR: v_r = M^T w_r.
        Vector readVector(w);
        {
            KernelScope scope(profiler_, Kernel::MemoryRead);
            readVector = matTVec(memory_, weighting);
            auto &c = profiler_.at(Kernel::MemoryRead);
            c.macOps += static_cast<std::uint64_t>(n) * w;
            c.extMemAccesses += static_cast<std::uint64_t>(n) * w;
            c.stateMemAccesses += n;
        }
        if (config_.fixedPoint)
            readVector = quantize(readVector);

        readWeightings_[head] = weighting;
        out.readWeightings.push_back(std::move(weighting));
        out.readVectors.push_back(std::move(readVector));
    }
}

void
MemoryUnit::reset()
{
    memory_.fill(0.0);
    usage_.fill(0.0);
    linkage_.reset();
    writeWeighting_.fill(0.0);
    for (auto &rw : readWeightings_)
        rw.fill(0.0);
}

} // namespace hima
