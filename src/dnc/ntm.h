/**
 * @file
 * Neural Turing Machine memory unit — the model the MANNA baseline
 * accelerates. NTM uses only *content-based* addressing plus location
 * interpolation/shift/sharpen; it has no usage, allocation, linkage or
 * precedence state ("access kernels" only, Table 1), which is exactly why
 * MANNA cannot run DNC and why HiMA needs the new state kernels.
 */

#ifndef HIMA_DNC_NTM_H
#define HIMA_DNC_NTM_H

#include <vector>

#include "dnc/content_addressing.h"
#include "dnc/dnc_config.h"
#include "dnc/kernel_profiler.h"

namespace hima {

/** One NTM head's addressing inputs. */
struct NtmHeadInput
{
    Vector key;        ///< width-W lookup key
    Real strength;     ///< content sharpness beta >= 1
    Real gate;         ///< interpolation gate in [0, 1]
    Vector shift;      ///< length-3 shift kernel on the simplex
    Real gamma;        ///< sharpening exponent >= 1
};

/** Interface consumed by one NTM step. */
struct NtmInterface
{
    std::vector<NtmHeadInput> readHeads; ///< R read heads
    NtmHeadInput writeHead;
    Vector eraseVector; ///< width W, in (0, 1)
    Vector addVector;   ///< width W
};

/** Functional NTM memory unit with the MANNA-relevant kernel profile. */
class NtmMemoryUnit
{
  public:
    explicit NtmMemoryUnit(const DncConfig &config);

    /** One soft write + R soft reads; returns the R read vectors. */
    std::vector<Vector> step(const NtmInterface &iface);

    void reset();

    /**
     * Overwrite the external memory directly (episode setup / tests).
     * Real deployments prime memory through soft writes; this bypass
     * mirrors the DMA preload path an accelerator exposes.
     */
    void seedMemory(const Matrix &contents);

    const Matrix &memory() const { return memory_; }
    const std::vector<Vector> &readWeightings() const
    {
        return readWeightings_;
    }
    const Vector &writeWeighting() const { return writeWeighting_; }
    KernelProfiler &profiler() { return profiler_; }
    const KernelProfiler &profiler() const { return profiler_; }

  private:
    /** Content -> interpolate -> shift -> sharpen addressing chain. */
    Vector address(const NtmHeadInput &head, const Vector &prevWeighting);

    DncConfig config_;
    ContentAddressing addressing_;
    Matrix memory_;
    Vector writeWeighting_;
    std::vector<Vector> readWeightings_;
    KernelProfiler profiler_;
};

} // namespace hima

#endif // HIMA_DNC_NTM_H
