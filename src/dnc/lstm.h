/**
 * @file
 * LSTM controller substrate. HiMA's controller tile hosts "an LSTM
 * implementation employed by [MANNA]"; this is the functional equivalent:
 * a standard LSTM cell (input/forget/output gates + candidate) with the
 * profiler charging its MACs to the NN kernel category.
 */

#ifndef HIMA_DNC_LSTM_H
#define HIMA_DNC_LSTM_H

#include "common/random.h"
#include "dnc/kernel_profiler.h"

namespace hima {

/** A single LSTM layer with persistent (h, c) state. */
class LstmCell
{
  public:
    /**
     * @param inputSize  width of x_t
     * @param hiddenSize width of h_t / c_t
     * @param rng        weight initializer (Xavier-scaled normal)
     */
    LstmCell(Index inputSize, Index hiddenSize, Rng &rng);

    /**
     * One recurrence step; returns the new hidden state. The reference
     * to the internal state stays valid until the next step()/reset().
     * Gate pre-activations live in member scratch, so a steady-state
     * step performs zero heap allocations.
     */
    const Vector &step(const Vector &input,
                       KernelProfiler *profiler = nullptr);

    /** Zero the recurrent state. */
    void reset();

    const Vector &hidden() const { return hidden_; }
    const Vector &cell() const { return cell_; }
    Index inputSize() const { return inputSize_; }
    Index hiddenSize() const { return hiddenSize_; }

    /** MACs per step: 4 gates of (in + hidden + 1) x hidden. */
    std::uint64_t macsPerStep() const;

    // Weight inspection for engines that share one cell's weights across
    // many state lanes (the batched serving engine). Gate order: input,
    // forget, candidate, output.
    const Matrix &inputWeights(int gate) const { return wx_[gate]; }
    const Matrix &recurrentWeights(int gate) const { return wh_[gate]; }
    const Vector &gateBias(int gate) const { return bias_[gate]; }

  private:
    Index inputSize_;
    Index hiddenSize_;

    // Gate weights: each maps [x; h] + bias -> hidden. Order: input,
    // forget, candidate, output.
    Matrix wx_[4];
    Matrix wh_[4];
    Vector bias_[4];
    Vector gates_[4]; ///< pre-activation scratch, one per gate

    Vector hidden_;
    Vector cell_;
};

} // namespace hima

#endif // HIMA_DNC_LSTM_H
