/**
 * @file
 * Allocation weighting (HW.(2)-(3) in Fig. 2): sort the usage vector
 * ascending to obtain the free list, then accumulate products of sorted
 * usage so the least-used slot receives (almost) all the write allocation.
 *
 * The sorter is pluggable — centralized merge sort, HiMA's two-stage sort,
 * or a plain std::sort reference — because the sorting *result* must be
 * identical across them (tested) while the cycle cost differs. Usage
 * skimming (Sec. 5.2) optionally drops the entries least relevant to the
 * allocation before sorting.
 */

#ifndef HIMA_DNC_ALLOCATION_H
#define HIMA_DNC_ALLOCATION_H

#include <functional>

#include "dnc/kernel_profiler.h"
#include "sort/sort_types.h"

namespace hima {

/** Pluggable sorting backend for the usage sort. */
using UsageSortFn =
    std::function<SortResult(const std::vector<SortRecord> &, SortOrder)>;

/** Reference backend: std::stable_sort, zero modeled cycles. */
SortResult referenceUsageSort(const std::vector<SortRecord> &records,
                              SortOrder order);

/**
 * Compute the allocation weighting.
 *
 * wa[phi[j]] = (1 - u[phi[j]]) * prod_{i<j} u[phi[i]] with phi the
 * ascending usage order.
 *
 * Usage skimming (Sec. 5.2): discard the K *smallest* usage entries
 * before the sort, shrinking the sort and product chain by K. Skimmed
 * entries receive zero allocation weight, so writes land on the
 * (K+1)-th least-used slot onward. While plenty of near-free slots
 * remain this is harmless (the paper's "least significant usage entries
 * have little effect"); as memory pressure grows it forces overwrites of
 * live slots — the accuracy/efficiency trade Fig. 10 quantifies.
 *
 * @param usage    length-N usage vector, entries in [0, 1]
 * @param sorter   sorting backend (defaults to the reference sort)
 * @param skimK    entries to skim (0 disables)
 * @param profiler optional instrumentation sink
 */
Vector allocationWeighting(const Vector &usage,
                           const UsageSortFn &sorter = referenceUsageSort,
                           Index skimK = 0,
                           KernelProfiler *profiler = nullptr);

/**
 * Destination-passing allocation weighting.
 *
 * With a null `sorter`, the reference backend (zero modeled cycles) runs
 * as an in-place std::sort on `recordScratch`, so a steady-state call
 * with skimK == 0 performs no heap allocation; the permutation is
 * identical to referenceUsageSort's stable sort because recordLess is a
 * strict total order. A non-null sorter goes through the pluggable
 * std::function exactly as the value-returning API does.
 *
 * @param recordScratch reusable (key, index) buffer, grown on first use
 * @param wa            result weighting (resized and overwritten)
 */
void allocationWeightingInto(const Vector &usage, const UsageSortFn *sorter,
                             Index skimK,
                             std::vector<SortRecord> &recordScratch,
                             Vector &wa,
                             KernelProfiler *profiler = nullptr);

} // namespace hima

#endif // HIMA_DNC_ALLOCATION_H
