/**
 * @file
 * Per-kernel instrumentation matching Table 1 of the paper.
 *
 * Every DNC kernel (normalize, similarity, retention, usage sort, linkage,
 * forward-backward, ...) reports its primitive-operation counts, external
 * and state memory accesses, and wall-clock runtime through this profiler.
 * Table 1 (`bench_table1_kernels`) and the Fig. 4 / Fig. 11(b) runtime
 * breakdowns are generated from these measurements rather than from
 * hand-written formulas.
 */

#ifndef HIMA_DNC_KERNEL_PROFILER_H
#define HIMA_DNC_KERNEL_PROFILER_H

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace hima {

/** DNC kernels, one per row of Table 1 plus the NN (LSTM) itself. */
enum class Kernel
{
    Normalize,
    Similarity,
    MemoryWrite,
    MemoryRead,
    Retention,
    Usage,
    UsageSort,
    Allocation,
    WriteMerge,
    Linkage,
    Precedence,
    ForwardBackward,
    ReadMerge,
    Lstm,
    NumKernels,
};

/** Kernel groups used in the paper's runtime/power breakdowns (Fig. 4). */
enum class KernelCategory
{
    ContentWeighting,  ///< normalize + similarity (write and read)
    MemoryAccess,      ///< external memory write/read
    HistoryWrite,      ///< retention, usage, usage sort, allocation, merge
    HistoryRead,       ///< linkage, precedence, forward-backward, merge
    Nn,                ///< the LSTM controller
    NumCategories,
};

/** Human-readable kernel name ("Usage Sort"). */
const char *kernelName(Kernel k);

/** Category a kernel belongs to. */
KernelCategory kernelCategory(Kernel k);

/** Human-readable category name ("History-based Wr. Weighting"). */
const char *categoryName(KernelCategory c);

/** Counters accumulated for one kernel. */
struct KernelCounters
{
    std::uint64_t invocations = 0;
    std::uint64_t macOps = 0;        ///< multiply-accumulate
    std::uint64_t elementOps = 0;    ///< element-wise add/sub/mult
    std::uint64_t specialOps = 0;    ///< exp / div / sqrt (SFU traffic)
    std::uint64_t compareOps = 0;    ///< sorter comparator activations
    std::uint64_t extMemAccesses = 0;   ///< external memory words touched
    std::uint64_t stateMemAccesses = 0; ///< state memory words touched
    std::uint64_t nanoseconds = 0;   ///< wall-clock time inside the kernel

    /**
     * Software sparse-sweep savings. Op counters above always charge
     * the full hardware cost model (a Table 1 invariant); these two
     * record what the simulator actually avoided, so the active-row
     * linkage sweep's saving is observable without perturbing the
     * hardware numbers. `skippedRows` counts rows left untouched per
     * logical kernel invocation; `skippedOps` the ops those rows would
     * have cost.
     */
    std::uint64_t skippedRows = 0;
    std::uint64_t skippedOps = 0;

    std::uint64_t
    totalOps() const
    {
        return macOps + elementOps + specialOps + compareOps;
    }

    void merge(const KernelCounters &other);
};

/** Accumulates KernelCounters for every kernel of one model instance. */
class KernelProfiler
{
  public:
    KernelCounters &at(Kernel k);
    const KernelCounters &at(Kernel k) const;

    /** Sum of counters over all kernels in a category. */
    KernelCounters categoryTotal(KernelCategory c) const;

    /** Sum over every kernel. */
    KernelCounters grandTotal() const;

    /** Merge another profiler's counts into this one. */
    void merge(const KernelProfiler &other);

    void reset();

  private:
    std::array<KernelCounters, static_cast<int>(Kernel::NumKernels)>
        counters_{};
};

/**
 * RAII wall-clock scope: charges elapsed nanoseconds and one invocation to
 * the kernel on destruction.
 */
class KernelScope
{
  public:
    KernelScope(KernelProfiler &profiler, Kernel kernel)
        : profiler_(profiler), kernel_(kernel),
          start_(std::chrono::steady_clock::now())
    {}

    ~KernelScope()
    {
        const auto elapsed = std::chrono::steady_clock::now() - start_;
        auto &c = profiler_.at(kernel_);
        ++c.invocations;
        c.nanoseconds += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count());
    }

    KernelScope(const KernelScope &) = delete;
    KernelScope &operator=(const KernelScope &) = delete;

  private:
    KernelProfiler &profiler_;
    Kernel kernel_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace hima

#endif // HIMA_DNC_KERNEL_PROFILER_H
