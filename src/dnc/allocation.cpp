#include "dnc/allocation.h"

#include <algorithm>
#include <optional>

#include "approx/usage_skimming.h"
#include "common/tensor.h"

namespace hima {

SortResult
referenceUsageSort(const std::vector<SortRecord> &records, SortOrder order)
{
    SortResult result;
    result.records = records;
    std::stable_sort(result.records.begin(), result.records.end(),
                     [order](const SortRecord &a, const SortRecord &b) {
                         return recordLess(a, b, order);
                     });
    result.cycles = 0;
    result.comparisons = 0;
    return result;
}

Vector
allocationWeighting(const Vector &usage, const UsageSortFn &sorter,
                    Index skimK, KernelProfiler *profiler)
{
    std::vector<SortRecord> scratch;
    Vector wa;
    allocationWeightingInto(usage, &sorter, skimK, scratch, wa, profiler);
    return wa;
}

void
allocationWeightingInto(const Vector &usage, const UsageSortFn *sorter,
                        Index skimK,
                        std::vector<SortRecord> &recordScratch, Vector &wa,
                        KernelProfiler *profiler)
{
    const Index n = usage.size();
    HIMA_ASSERT(n > 0, "allocation over empty usage");
    HIMA_ASSERT(skimK < n, "cannot skim %zu of %zu", skimK, n);

    // --- Skim: drop the K smallest usage entries (Sec. 5.2). ---
    recordScratch.clear();
    if (skimK == 0) {
        const Real *pu = usage.data();
        for (Index i = 0; i < n; ++i)
            recordScratch.push_back({pu[i], i});
    } else {
        const SkimmedUsage skimmed = skimUsage(usage, skimK);
        for (Index i = 0; i < skimmed.values.size(); ++i)
            recordScratch.push_back({skimmed.values[i], skimmed.indices[i]});
    }

    // --- HW.(2) Usage sort (ascending = free list order). ---
    std::uint64_t comparisons = 0;
    {
        std::optional<KernelScope> scope;
        if (profiler)
            scope.emplace(*profiler, Kernel::UsageSort);
        if (sorter) {
            SortResult sorted =
                (*sorter)(recordScratch, SortOrder::Ascending);
            comparisons = sorted.comparisons;
            recordScratch.swap(sorted.records);
        } else {
            // Reference backend, in place: recordLess is a strict total
            // order, so std::sort realizes the stable-sort permutation
            // without stable_sort's temporary buffer.
            std::sort(recordScratch.begin(), recordScratch.end(),
                      [](const SortRecord &a, const SortRecord &b) {
                          return recordLess(a, b, SortOrder::Ascending);
                      });
        }
        if (profiler) {
            auto &c = profiler->at(Kernel::UsageSort);
            c.compareOps += comparisons;
            c.stateMemAccesses += 2 * recordScratch.size(); // read + write
        }
    }
    HIMA_ASSERT(isSorted(recordScratch, SortOrder::Ascending),
                "usage sort backend returned unsorted output");

    // --- HW.(3) Allocation: accumulate products along the free list. ---
    std::optional<KernelScope> scope;
    if (profiler)
        scope.emplace(*profiler, Kernel::Allocation);

    wa.resize(n);
    wa.fill(0.0);
    Real *pw = wa.data();
    Real runningProduct = 1.0;
    for (const SortRecord &rec : recordScratch) {
        pw[rec.idx] = (1.0 - rec.key) * runningProduct;
        runningProduct *= rec.key;
    }

    if (profiler) {
        auto &c = profiler->at(Kernel::Allocation);
        c.elementOps += 2 * recordScratch.size(); // (1-u)*prod and prod*=
        c.stateMemAccesses += 2 * recordScratch.size();
    }
}

} // namespace hima
