#include "dnc/allocation.h"

#include <algorithm>
#include <memory>

#include "approx/usage_skimming.h"
#include "common/tensor.h"

namespace hima {

SortResult
referenceUsageSort(const std::vector<SortRecord> &records, SortOrder order)
{
    SortResult result;
    result.records = records;
    std::stable_sort(result.records.begin(), result.records.end(),
                     [order](const SortRecord &a, const SortRecord &b) {
                         return recordLess(a, b, order);
                     });
    result.cycles = 0;
    result.comparisons = 0;
    return result;
}

Vector
allocationWeighting(const Vector &usage, const UsageSortFn &sorter,
                    Index skimK, KernelProfiler *profiler)
{
    const Index n = usage.size();
    HIMA_ASSERT(n > 0, "allocation over empty usage");
    HIMA_ASSERT(skimK < n, "cannot skim %zu of %zu", skimK, n);

    // --- Skim: drop the K smallest usage entries (Sec. 5.2). ---
    std::vector<SortRecord> records;
    records.reserve(n - skimK);
    if (skimK == 0) {
        records = makeRecords(usage);
    } else {
        const SkimmedUsage skimmed = skimUsage(usage, skimK);
        for (Index i = 0; i < skimmed.values.size(); ++i)
            records.push_back({skimmed.values[i], skimmed.indices[i]});
    }

    // --- HW.(2) Usage sort (ascending = free list order). ---
    SortResult sorted;
    {
        std::unique_ptr<KernelScope> scope;
        if (profiler)
            scope = std::make_unique<KernelScope>(*profiler,
                                                  Kernel::UsageSort);
        sorted = sorter(records, SortOrder::Ascending);
        if (profiler) {
            auto &c = profiler->at(Kernel::UsageSort);
            c.compareOps += sorted.comparisons;
            c.stateMemAccesses += 2 * records.size(); // read + write back
        }
    }
    HIMA_ASSERT(isSorted(sorted.records, SortOrder::Ascending),
                "usage sort backend returned unsorted output");

    // --- HW.(3) Allocation: accumulate products along the free list. ---
    std::unique_ptr<KernelScope> scope;
    if (profiler)
        scope = std::make_unique<KernelScope>(*profiler, Kernel::Allocation);

    Vector wa(n, 0.0);
    Real runningProduct = 1.0;
    for (const SortRecord &rec : sorted.records) {
        wa[rec.idx] = (1.0 - rec.key) * runningProduct;
        runningProduct *= rec.key;
    }

    if (profiler) {
        auto &c = profiler->at(Kernel::Allocation);
        c.elementOps += 2 * sorted.records.size(); // (1-u)*prod and prod*=
        c.stateMemAccesses += 2 * sorted.records.size();
    }
    return wa;
}

} // namespace hima
