#include "serve/batched_dnc.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "dnc/interface.h"

namespace hima {

namespace {

/** Rows per pool task in the controller sweeps. */
constexpr Index kRowBlock = 32;


Index
blockCount(Index rows)
{
    return (rows + kRowBlock - 1) / kRowBlock;
}

/** Register-resident c-ascending dot product (the matVecInto chain). */
inline Real
dotContiguous(const Real *w, const Real *x, Index n)
{
    Real acc = 0.0;
    for (Index k = 0; k < n; ++k)
        acc += w[k] * x[k];
    return acc;
}

} // namespace

BatchedDnc::BatchedDnc(const DncConfig &config, std::uint64_t seed)
    : config_(config), batch_(config.batchSize),
      feedWidth_(config.inputSize + config.readHeads * config.memoryWidth),
      readWidth_(config.readHeads * config.memoryWidth), rng_(seed),
      proto_(config_, rng_)
{
    config_.validate();

    const Index n = config_.memoryRows;
    const Index w = config_.memoryWidth;
    const Index r = config_.readHeads;
    const Index h = config_.controllerSize;
    const Index ifaceSize = config_.interfaceSize();

    lanes_.reserve(batch_);
    for (Index b = 0; b < batch_; ++b)
        lanes_.emplace_back(config_);

    // Pre-size every per-lane buffer so the first step is already in
    // steady state: MemoryUnit::stepInto's resizes become no-ops and the
    // feed concat reads zeroed previous-step read vectors, exactly like
    // a fresh Dnc.
    readouts_.resize(batch_);
    for (MemoryReadout &ro : readouts_) {
        ro.readVectors.assign(r, Vector(w));
        ro.readWeightings.assign(r, Vector(n));
        ro.writeWeighting.resize(n);
    }
    ifaces_.resize(batch_);
    rawLane_.assign(batch_, Vector(ifaceSize));

    feed_.resize(feedWidth_ * batch_);
    hidden_.resize(h * batch_);
    hiddenPrev_.resize(h * batch_);
    cell_.resize(h * batch_);
    for (auto &g : gatePre_)
        g.resize(h * batch_);
    rawIface_.resize(ifaceSize * batch_);
    readsFlat_.resize(readWidth_ * batch_);
    outSoA_.resize(config_.outputSize * batch_);

    if (config_.numThreads > 1)
        pool_ = std::make_unique<ThreadPool>(config_.numThreads);
    lstmBlocks_ = blockCount(h);
    ifaceBlocks_ = blockCount(ifaceSize);

    // Prebuilt tasks: a [this] capture fits std::function's small-object
    // buffer, and reusing the members keeps steady-state steps free of
    // even transient allocations.
    lstmTask_ = [this](Index blk) {
        const Index row0 = blk * kRowBlock;
        lstmRows(row0, std::min(row0 + kRowBlock, config_.controllerSize));
    };
    ifaceTask_ = [this](Index blk) {
        const Index row0 = blk * kRowBlock;
        ifaceRows(row0, std::min(row0 + kRowBlock, config_.interfaceSize()));
    };
    laneTask_ = [this](Index lane) { laneStep(lane); };
}

void
BatchedDnc::dispatch(Index count, const std::function<void(Index)> &fn)
{
    if (pool_) {
        pool_->parallelFor(count, fn);
    } else {
        for (Index i = 0; i < count; ++i)
            fn(i);
    }
}

void
BatchedDnc::lstmRows(Index row0, Index row1)
{
    const Index lanes = batch_;
    const Index h = config_.controllerSize;
    const LstmCell &lstm = proto_.lstm();

    const Real *pf = feed_.data();
    const Real *php = hiddenPrev_.data();
    Real *ph = hidden_.data();
    Real *pc = cell_.data();

    // Single-lane batches degenerate to contiguous dot products; keep
    // the accumulators in registers (identical chains, ~2x faster).
    if (lanes == 1) {
        for (Index j = row0; j < row1; ++j) {
            for (int g = 0; g < 4; ++g) {
                const Real accx = dotContiguous(
                    lstm.inputWeights(g).rowPtr(j), pf, feedWidth_);
                const Real acch = dotContiguous(
                    lstm.recurrentWeights(g).rowPtr(j), php, h);
                gatePre_[g][j] = (accx + acch) + lstm.gateBias(g)[j];
            }
            const Real i = sigmoid(gatePre_[0][j]);
            const Real f = sigmoid(gatePre_[1][j]);
            const Real cand = std::tanh(gatePre_[2][j]);
            const Real o = sigmoid(gatePre_[3][j]);
            pc[j] = f * pc[j] + i * cand;
            ph[j] = o * std::tanh(pc[j]);
        }
        return;
    }

    Real accx[kBatchLaneChunk];
    Real acch[kBatchLaneChunk];
    for (Index b0 = 0; b0 < lanes; b0 += kBatchLaneChunk) {
        const Index nb = std::min(kBatchLaneChunk, lanes - b0);
        for (Index j = row0; j < row1; ++j) {
            // Gate pre-activations: per lane, the exact LstmCell::step
            // chain (Wx x complete, then + Wh h complete, then + bias).
            for (int g = 0; g < 4; ++g) {
                const Real *wx = lstm.inputWeights(g).rowPtr(j);
                const Real *wh = lstm.recurrentWeights(g).rowPtr(j);
                const Real bias = lstm.gateBias(g)[j];
                for (Index b = 0; b < nb; ++b) {
                    accx[b] = 0.0;
                    acch[b] = 0.0;
                }
                for (Index k = 0; k < feedWidth_; ++k) {
                    const Real wv = wx[k];
                    const Real *xl = pf + k * lanes + b0;
                    for (Index b = 0; b < nb; ++b)
                        accx[b] += wv * xl[b];
                }
                for (Index k = 0; k < h; ++k) {
                    const Real wv = wh[k];
                    const Real *hl = php + k * lanes + b0;
                    for (Index b = 0; b < nb; ++b)
                        acch[b] += wv * hl[b];
                }
                Real *gp = gatePre_[g].data() + j * lanes + b0;
                for (Index b = 0; b < nb; ++b)
                    gp[b] = (accx[b] + acch[b]) + bias;
            }

            // Cell/hidden update, scalar-for-scalar LstmCell::step.
            const Real *gi = gatePre_[0].data() + j * lanes + b0;
            const Real *gf = gatePre_[1].data() + j * lanes + b0;
            const Real *gc = gatePre_[2].data() + j * lanes + b0;
            const Real *go = gatePre_[3].data() + j * lanes + b0;
            Real *cl = pc + j * lanes + b0;
            Real *hl = ph + j * lanes + b0;
            for (Index b = 0; b < nb; ++b) {
                const Real i = sigmoid(gi[b]);
                const Real f = sigmoid(gf[b]);
                const Real cand = std::tanh(gc[b]);
                const Real o = sigmoid(go[b]);
                cl[b] = f * cl[b] + i * cand;
                hl[b] = o * std::tanh(cl[b]);
            }
        }
    }
}

void
BatchedDnc::ifaceRows(Index row0, Index row1)
{
    const Index lanes = batch_;
    const Index h = config_.controllerSize;
    const Matrix &head = proto_.interfaceHead();
    const Real *ph = hidden_.data();
    Real *py = rawIface_.data();

    if (lanes == 1) {
        for (Index q = row0; q < row1; ++q)
            py[q] = dotContiguous(head.rowPtr(q), ph, h);
        return;
    }

    Real acc[kBatchLaneChunk];
    for (Index b0 = 0; b0 < lanes; b0 += kBatchLaneChunk) {
        const Index nb = std::min(kBatchLaneChunk, lanes - b0);
        for (Index q = row0; q < row1; ++q) {
            const Real *row = head.rowPtr(q);
            for (Index b = 0; b < nb; ++b)
                acc[b] = 0.0;
            for (Index k = 0; k < h; ++k) {
                const Real wv = row[k];
                const Real *hl = ph + k * lanes + b0;
                for (Index b = 0; b < nb; ++b)
                    acc[b] += wv * hl[b];
            }
            Real *yl = py + q * lanes + b0;
            for (Index b = 0; b < nb; ++b)
                yl[b] = acc[b];
        }
    }
}

void
BatchedDnc::laneStep(Index lane)
{
    const Index w = config_.memoryWidth;

    // Decode this lane's interface emission and run its memory tile —
    // the unchanged allocation-free MemoryUnit hot path.
    laneGatherInto(rawIface_, batch_, lane, config_.interfaceSize(),
                   rawLane_[lane]);
    decodeInterfaceInto(rawLane_[lane], config_, ifaces_[lane]);
    lanes_[lane].stepInto(ifaces_[lane], readouts_[lane]);

    // Scatter this step's read vectors into the SoA feed for the output
    // head (and next step's controller input).
    for (Index head = 0; head < config_.readHeads; ++head)
        laneScatterInto(readouts_[lane].readVectors[head], batch_, lane,
                        readsFlat_, head * w);
}

void
BatchedDnc::outputSweep()
{
    // y = (W_y h) + (W_r reads), the Controller::outputInto chain: each
    // lane's two row sums are completed before the single +=.
    batchedMatVecInto(proto_.outputHead(), hidden_, batch_, outSoA_);
    batchedMatVecAccumulate(proto_.readHead(), readsFlat_, batch_, outSoA_);
}

void
BatchedDnc::stepInto(const std::vector<Vector> &inputs,
                     std::vector<Vector> &outputs)
{
    HIMA_ASSERT(inputs.size() == batch_, "batch input arity %zu != %zu",
                inputs.size(), batch_);

    // Feed concat [input; previous reads] into the SoA tile. The reads
    // block of the feed has exactly readsFlat_'s layout (row r*W+c, lane
    // b), and laneStep left last step's reads there — one contiguous
    // copy instead of B*R*W strided writes.
    Real *pf = feed_.data();
    for (Index b = 0; b < batch_; ++b) {
        HIMA_ASSERT(inputs[b].size() == config_.inputSize,
                    "lane %zu input width %zu != %zu", b, inputs[b].size(),
                    config_.inputSize);
        const Real *pi = inputs[b].data();
        for (Index k = 0; k < config_.inputSize; ++k)
            pf[k * batch_ + b] = pi[k];
    }
    std::copy(readsFlat_.begin(), readsFlat_.end(),
              pf + config_.inputSize * batch_);

    // Recurrence reads the pre-step hidden state; the row blocks write
    // hidden_ in place, so snapshot it once per step.
    std::copy(hidden_.begin(), hidden_.end(), hiddenPrev_.begin());

    dispatch(lstmBlocks_, lstmTask_);
    dispatch(ifaceBlocks_, ifaceTask_);
    dispatch(batch_, laneTask_);
    outputSweep();

    outputs.resize(batch_);
    for (Index b = 0; b < batch_; ++b)
        laneGatherInto(outSoA_, batch_, b, config_.outputSize, outputs[b]);
}

std::vector<Vector>
BatchedDnc::step(const std::vector<Vector> &inputs)
{
    std::vector<Vector> outputs;
    stepInto(inputs, outputs);
    return outputs;
}

void
BatchedDnc::reset()
{
    for (MemoryUnit &lane : lanes_)
        lane.reset();
    hidden_.fill(0.0);
    cell_.fill(0.0);
    // readsFlat_ feeds the next step's controller input directly, so it
    // must drop the pre-reset reads along with the per-lane copies.
    readsFlat_.fill(0.0);
    for (MemoryReadout &ro : readouts_)
        for (Vector &rv : ro.readVectors)
            rv.fill(0.0);
}

Vector
BatchedDnc::laneHidden(Index lane) const
{
    Vector v;
    laneGatherInto(hidden_, batch_, lane, config_.controllerSize, v);
    return v;
}

Vector
BatchedDnc::laneCell(Index lane) const
{
    Vector v;
    laneGatherInto(cell_, batch_, lane, config_.controllerSize, v);
    return v;
}

} // namespace hima
