#include "serve/batched_dnc.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "dnc/interface.h"

namespace hima {

namespace {

/** Rows per pool task in the controller sweeps. */
constexpr Index kRowBlock = 32;


Index
blockCount(Index rows)
{
    return (rows + kRowBlock - 1) / kRowBlock;
}

/** Register-resident c-ascending dot product (the matVecInto chain). */
inline Real
dotContiguous(const Real *w, const Real *x, Index n)
{
    Real acc = 0.0;
    for (Index k = 0; k < n; ++k)
        acc += w[k] * x[k];
    return acc;
}

} // namespace

BatchedDnc::BatchedDnc(const DncConfig &config, std::uint64_t seed)
    : config_(config), batch_(config.batchSize),
      feedWidth_(config.inputSize + config.readHeads * config.memoryWidth),
      readWidth_(config.readHeads * config.memoryWidth), rng_(seed),
      proto_(config_, rng_)
{
    config_.validate();

    const Index n = config_.memoryRows;
    const Index w = config_.memoryWidth;
    const Index r = config_.readHeads;
    const Index h = config_.controllerSize;
    const Index ifaceSize = config_.interfaceSize();

    lanes_.reserve(batch_);
    for (Index b = 0; b < batch_; ++b)
        lanes_.emplace_back(config_);

    // Pre-size every per-lane buffer so the first step is already in
    // steady state: MemoryUnit::stepInto's resizes become no-ops and the
    // feed concat reads zeroed previous-step read vectors, exactly like
    // a fresh Dnc.
    readouts_.resize(batch_);
    for (MemoryReadout &ro : readouts_) {
        ro.readVectors.assign(r, Vector(w));
        ro.readWeightings.assign(r, Vector(n));
        ro.writeWeighting.resize(n);
    }
    ifaces_.resize(batch_);
    rawLane_.assign(batch_, Vector(ifaceSize));

    // All slots start Active in their home columns (slot i == column i):
    // the fixed-B lockstep behavior, unchanged for churn-free callers.
    slots_.resize(batch_);
    colToSlot_.resize(batch_);
    for (Index b = 0; b < batch_; ++b) {
        slots_[b] = LaneSlot{LaneState::Active, b};
        colToSlot_[b] = b;
    }
    freeSlots_.reserve(batch_);
    active_ = batch_;
    occupied_ = batch_;

    feed_.resize(feedWidth_ * batch_);
    hidden_.resize(h * batch_);
    hiddenPrev_.resize(h * batch_);
    cell_.resize(h * batch_);
    for (auto &g : gatePre_)
        g.resize(h * batch_);
    rawIface_.resize(ifaceSize * batch_);
    readsFlat_.resize(readWidth_ * batch_);
    outSoA_.resize(config_.outputSize * batch_);

    if (config_.numThreads > 1)
        pool_ = std::make_unique<ThreadPool>(config_.numThreads);
    lstmBlocks_ = blockCount(h);
    ifaceBlocks_ = blockCount(ifaceSize);

    // Prebuilt tasks: a [this] capture fits std::function's small-object
    // buffer, and reusing the members keeps steady-state steps free of
    // even transient allocations.
    lstmTask_ = [this](Index blk) {
        const Index row0 = blk * kRowBlock;
        lstmRows(row0, std::min(row0 + kRowBlock, config_.controllerSize));
    };
    ifaceTask_ = [this](Index blk) {
        const Index row0 = blk * kRowBlock;
        ifaceRows(row0, std::min(row0 + kRowBlock, config_.interfaceSize()));
    };
    laneTask_ = [this](Index column) { columnStep(column); };
}

void
BatchedDnc::dispatch(Index count, const std::function<void(Index)> &fn)
{
    if (pool_) {
        pool_->parallelFor(count, fn);
    } else {
        for (Index i = 0; i < count; ++i)
            fn(i);
    }
}

// ---------------------------------------------------------------------
// Lane lifecycle.
//
// Persistent per-lane controller state is three SoA columns (hidden,
// cell, previous reads); everything else is recomputed every step. The
// compaction invariant — Active columns form the prefix [0, active_),
// Draining columns sit in [active_, occupied_) — is maintained by
// swapping/moving single columns on each transition, so a transition
// costs O(H + R*W) strided copies and never allocates.
// ---------------------------------------------------------------------

void
BatchedDnc::swapColumns(Index a, Index b)
{
    if (a == b)
        return;
    const Index h = config_.controllerSize;
    Real *ph = hidden_.data();
    Real *pc = cell_.data();
    Real *pr = readsFlat_.data();
    for (Index j = 0; j < h; ++j) {
        std::swap(ph[j * batch_ + a], ph[j * batch_ + b]);
        std::swap(pc[j * batch_ + a], pc[j * batch_ + b]);
    }
    for (Index k = 0; k < readWidth_; ++k)
        std::swap(pr[k * batch_ + a], pr[k * batch_ + b]);
    std::swap(colToSlot_[a], colToSlot_[b]);
    slots_[colToSlot_[a]].column = a;
    slots_[colToSlot_[b]].column = b;
}

void
BatchedDnc::moveColumn(Index from, Index to)
{
    if (from == to)
        return;
    const Index h = config_.controllerSize;
    Real *ph = hidden_.data();
    Real *pc = cell_.data();
    Real *pr = readsFlat_.data();
    for (Index j = 0; j < h; ++j) {
        ph[j * batch_ + to] = ph[j * batch_ + from];
        pc[j * batch_ + to] = pc[j * batch_ + from];
    }
    for (Index k = 0; k < readWidth_; ++k)
        pr[k * batch_ + to] = pr[k * batch_ + from];
    colToSlot_[to] = colToSlot_[from];
    slots_[colToSlot_[to]].column = to;
}

void
BatchedDnc::zeroColumn(Index column)
{
    const Index h = config_.controllerSize;
    Real *ph = hidden_.data();
    Real *pc = cell_.data();
    Real *pr = readsFlat_.data();
    for (Index j = 0; j < h; ++j) {
        ph[j * batch_ + column] = 0.0;
        pc[j * batch_ + column] = 0.0;
    }
    for (Index k = 0; k < readWidth_; ++k)
        pr[k * batch_ + column] = 0.0;
}

Index
BatchedDnc::admit()
{
    HIMA_ASSERT(!freeSlots_.empty(), "admit: no free lanes (capacity %zu)",
                batch_);

    // The new Active column goes at active_, which may currently back a
    // Draining lane — relocate that lane to the end of the occupied
    // region first.
    if (occupied_ > active_)
        moveColumn(active_, occupied_);

    const Index slot = freeSlots_.back();
    freeSlots_.pop_back();
    slots_[slot] = LaneSlot{LaneState::Active, active_};
    colToSlot_[active_] = slot;

    // In-place episode reset: the admitted lane must be bit-identical to
    // a freshly constructed Dnc. Nothing here reallocates.
    zeroColumn(active_);
    lanes_[slot].reset();
    for (Vector &rv : readouts_[slot].readVectors)
        rv.fill(0.0);
    for (Vector &rw : readouts_[slot].readWeightings)
        rw.fill(0.0);
    readouts_[slot].writeWeighting.fill(0.0);

    ++active_;
    ++occupied_;
    return slot;
}

void
BatchedDnc::markDraining(Index slot)
{
    HIMA_ASSERT(slot < batch_, "markDraining: slot %zu >= %zu", slot, batch_);
    HIMA_ASSERT(slots_[slot].state == LaneState::Active,
                "markDraining: slot %zu is not Active", slot);
    // Swap the lane to the end of the active prefix; the column there
    // belongs to another Active lane whose state must survive the swap.
    swapColumns(slots_[slot].column, active_ - 1);
    slots_[slot].state = LaneState::Draining;
    --active_;
}

void
BatchedDnc::release(Index slot)
{
    HIMA_ASSERT(slot < batch_, "release: slot %zu >= %zu", slot, batch_);
    HIMA_ASSERT(slots_[slot].state != LaneState::Free,
                "release: slot %zu is already Free", slot);
    if (slots_[slot].state == LaneState::Active)
        markDraining(slot);
    // Swap the lane to the end of the occupied region and drop it.
    swapColumns(slots_[slot].column, occupied_ - 1);
    slots_[slot].state = LaneState::Free;
    --occupied_;
    freeSlots_.push_back(slot);
}

void
BatchedDnc::lstmRows(Index row0, Index row1)
{
    const Index active = active_;
    const Index stride = batch_;
    const Index h = config_.controllerSize;
    const LstmCell &lstm = proto_.lstm();

    const Real *pf = feed_.data();
    const Real *php = hiddenPrev_.data();
    Real *ph = hidden_.data();
    Real *pc = cell_.data();

    // Single-slot engines degenerate to contiguous dot products; keep
    // the accumulators in registers (identical chains, ~2x faster). Only
    // valid at stride 1 — a lone active lane in a wider tile is strided.
    if (stride == 1) {
        for (Index j = row0; j < row1; ++j) {
            for (int g = 0; g < 4; ++g) {
                const Real accx = dotContiguous(
                    lstm.inputWeights(g).rowPtr(j), pf, feedWidth_);
                const Real acch = dotContiguous(
                    lstm.recurrentWeights(g).rowPtr(j), php, h);
                gatePre_[g][j] = (accx + acch) + lstm.gateBias(g)[j];
            }
            const Real i = sigmoid(gatePre_[0][j]);
            const Real f = sigmoid(gatePre_[1][j]);
            const Real cand = std::tanh(gatePre_[2][j]);
            const Real o = sigmoid(gatePre_[3][j]);
            pc[j] = f * pc[j] + i * cand;
            ph[j] = o * std::tanh(pc[j]);
        }
        return;
    }

    Real accx[kBatchLaneChunk];
    Real acch[kBatchLaneChunk];
    for (Index b0 = 0; b0 < active; b0 += kBatchLaneChunk) {
        const Index nb = std::min(kBatchLaneChunk, active - b0);
        for (Index j = row0; j < row1; ++j) {
            // Gate pre-activations: per lane, the exact LstmCell::step
            // chain (Wx x complete, then + Wh h complete, then + bias).
            for (int g = 0; g < 4; ++g) {
                const Real *wx = lstm.inputWeights(g).rowPtr(j);
                const Real *wh = lstm.recurrentWeights(g).rowPtr(j);
                const Real bias = lstm.gateBias(g)[j];
                for (Index b = 0; b < nb; ++b) {
                    accx[b] = 0.0;
                    acch[b] = 0.0;
                }
                for (Index k = 0; k < feedWidth_; ++k) {
                    const Real wv = wx[k];
                    const Real *xl = pf + k * stride + b0;
                    for (Index b = 0; b < nb; ++b)
                        accx[b] += wv * xl[b];
                }
                for (Index k = 0; k < h; ++k) {
                    const Real wv = wh[k];
                    const Real *hl = php + k * stride + b0;
                    for (Index b = 0; b < nb; ++b)
                        acch[b] += wv * hl[b];
                }
                Real *gp = gatePre_[g].data() + j * stride + b0;
                for (Index b = 0; b < nb; ++b)
                    gp[b] = (accx[b] + acch[b]) + bias;
            }

            // Cell/hidden update, scalar-for-scalar LstmCell::step.
            const Real *gi = gatePre_[0].data() + j * stride + b0;
            const Real *gf = gatePre_[1].data() + j * stride + b0;
            const Real *gc = gatePre_[2].data() + j * stride + b0;
            const Real *go = gatePre_[3].data() + j * stride + b0;
            Real *cl = pc + j * stride + b0;
            Real *hl = ph + j * stride + b0;
            for (Index b = 0; b < nb; ++b) {
                const Real i = sigmoid(gi[b]);
                const Real f = sigmoid(gf[b]);
                const Real cand = std::tanh(gc[b]);
                const Real o = sigmoid(go[b]);
                cl[b] = f * cl[b] + i * cand;
                hl[b] = o * std::tanh(cl[b]);
            }
        }
    }
}

void
BatchedDnc::ifaceRows(Index row0, Index row1)
{
    const Index active = active_;
    const Index stride = batch_;
    const Index h = config_.controllerSize;
    const Matrix &head = proto_.interfaceHead();
    const Real *ph = hidden_.data();
    Real *py = rawIface_.data();

    if (stride == 1) {
        for (Index q = row0; q < row1; ++q)
            py[q] = dotContiguous(head.rowPtr(q), ph, h);
        return;
    }

    Real acc[kBatchLaneChunk];
    for (Index b0 = 0; b0 < active; b0 += kBatchLaneChunk) {
        const Index nb = std::min(kBatchLaneChunk, active - b0);
        for (Index q = row0; q < row1; ++q) {
            const Real *row = head.rowPtr(q);
            for (Index b = 0; b < nb; ++b)
                acc[b] = 0.0;
            for (Index k = 0; k < h; ++k) {
                const Real wv = row[k];
                const Real *hl = ph + k * stride + b0;
                for (Index b = 0; b < nb; ++b)
                    acc[b] += wv * hl[b];
            }
            Real *yl = py + q * stride + b0;
            for (Index b = 0; b < nb; ++b)
                yl[b] = acc[b];
        }
    }
}

void
BatchedDnc::columnStep(Index column)
{
    const Index w = config_.memoryWidth;
    const Index slot = colToSlot_[column];

    // Decode this lane's interface emission and run its memory tile —
    // the unchanged allocation-free MemoryUnit hot path.
    laneGatherInto(rawIface_, batch_, column, config_.interfaceSize(),
                   rawLane_[slot]);
    decodeInterfaceInto(rawLane_[slot], config_, ifaces_[slot]);
    lanes_[slot].stepInto(ifaces_[slot], readouts_[slot]);

    // Scatter this step's read vectors into the SoA feed for the output
    // head (and next step's controller input).
    for (Index head = 0; head < config_.readHeads; ++head)
        laneScatterInto(readouts_[slot].readVectors[head], batch_, column,
                        readsFlat_, head * w);
}

void
BatchedDnc::outputSweep()
{
    // y = (W_y h) + (W_r reads), the Controller::outputInto chain: each
    // lane's two row sums are completed before the single +=.
    batchedMatVecInto(proto_.outputHead(), hidden_, batch_, active_, outSoA_);
    batchedMatVecAccumulate(proto_.readHead(), readsFlat_, batch_, active_,
                            outSoA_);
}

void
BatchedDnc::stepInto(const std::vector<Vector> &inputs,
                     std::vector<Vector> &outputs)
{
    HIMA_ASSERT(inputs.size() == batch_, "batch input arity %zu != %zu",
                inputs.size(), batch_);

    outputs.resize(batch_);
    if (active_ == 0)
        return;

    // Feed concat [input; previous reads] into the SoA tile. inputs is
    // slot-indexed; the active prefix walk routes each Active slot's
    // token to its current column. The reads block of the feed has
    // exactly readsFlat_'s layout (row r*W+c, column b) and columnStep
    // left last step's reads there — copy only the active prefix of each
    // row, so occupancy bounds the work.
    Real *pf = feed_.data();
    for (Index c = 0; c < active_; ++c) {
        const Index slot = colToSlot_[c];
        HIMA_ASSERT(inputs[slot].size() == config_.inputSize,
                    "slot %zu input width %zu != %zu", slot,
                    inputs[slot].size(), config_.inputSize);
        const Real *pi = inputs[slot].data();
        for (Index k = 0; k < config_.inputSize; ++k)
            pf[k * batch_ + c] = pi[k];
    }
    const Real *prf = readsFlat_.data();
    Real *pfr = pf + config_.inputSize * batch_;
    for (Index k = 0; k < readWidth_; ++k)
        std::copy(prf + k * batch_, prf + k * batch_ + active_,
                  pfr + k * batch_);

    // Recurrence reads the pre-step hidden state; the row blocks write
    // hidden_ in place, so snapshot the active columns once per step.
    const Real *ph = hidden_.data();
    Real *php = hiddenPrev_.data();
    for (Index j = 0; j < config_.controllerSize; ++j)
        std::copy(ph + j * batch_, ph + j * batch_ + active_,
                  php + j * batch_);

    dispatch(lstmBlocks_, lstmTask_);
    dispatch(ifaceBlocks_, ifaceTask_);
    dispatch(active_, laneTask_);
    outputSweep();

    for (Index c = 0; c < active_; ++c)
        laneGatherInto(outSoA_, batch_, c, config_.outputSize,
                       outputs[colToSlot_[c]]);
}

std::vector<Vector>
BatchedDnc::step(const std::vector<Vector> &inputs)
{
    std::vector<Vector> outputs;
    stepInto(inputs, outputs);
    return outputs;
}

void
BatchedDnc::reset()
{
    for (MemoryUnit &lane : lanes_)
        lane.reset();
    hidden_.fill(0.0);
    cell_.fill(0.0);
    // readsFlat_ feeds the next step's controller input directly, so it
    // must drop the pre-reset reads along with the per-lane copies.
    readsFlat_.fill(0.0);
    for (MemoryReadout &ro : readouts_)
        for (Vector &rv : ro.readVectors)
            rv.fill(0.0);

    // Restore the construction-time lifecycle: every slot Active in its
    // home column.
    for (Index b = 0; b < batch_; ++b) {
        slots_[b] = LaneSlot{LaneState::Active, b};
        colToSlot_[b] = b;
    }
    freeSlots_.clear();
    active_ = batch_;
    occupied_ = batch_;
}

Vector
BatchedDnc::laneHidden(Index slot) const
{
    HIMA_ASSERT(slots_[slot].state != LaneState::Free,
                "laneHidden: slot %zu is Free", slot);
    Vector v;
    laneGatherInto(hidden_, batch_, slots_[slot].column,
                   config_.controllerSize, v);
    return v;
}

Vector
BatchedDnc::laneCell(Index slot) const
{
    HIMA_ASSERT(slots_[slot].state != LaneState::Free,
                "laneCell: slot %zu is Free", slot);
    Vector v;
    laneGatherInto(cell_, batch_, slots_[slot].column,
                   config_.controllerSize, v);
    return v;
}

} // namespace hima
