#include "serve/router.h"

#include <algorithm>
#include <utility>

namespace hima {

AdmissionPolicy
greedyAdmission()
{
    return [](Index queued, Index freeLanes, Index) {
        return std::min(queued, freeLanes);
    };
}

AdmissionPolicy
batchFillAdmission(Index minFill, Index maxWaitSteps)
{
    HIMA_ASSERT(minFill >= 1, "batchFillAdmission: minFill must be >= 1");
    return [minFill, maxWaitSteps](Index queued, Index freeLanes,
                                   Index oldestWait) {
        const Index bindable = std::min(queued, freeLanes);
        if (bindable >= minFill || oldestWait >= maxWaitSteps)
            return bindable;
        return Index{0};
    };
}

Router::RouterMetrics::RouterMetrics()
{
    obs::Registry &reg = obs::Registry::instance();
    steps = &reg.counter("router.steps");
    admitted = &reg.counter("router.admitted");
    completed = &reg.counter("router.completed");
    rejected = &reg.counter("router.rejected");
    queueDepth = &reg.gauge("router.queue_depth");
    activeLanes = &reg.gauge("router.active_lanes");
    stepNanos = &reg.histogram("router.step_nanos");
}

Router::Router(const DncConfig &config, std::uint64_t seed,
               AdmissionPolicy policy)
    : Router(std::make_unique<BatchedDnc>(config, seed), std::move(policy))
{}

Router::Router(std::unique_ptr<LaneEngine> engine, AdmissionPolicy policy)
    : engine_(std::move(engine)), policy_(std::move(policy))
{
    HIMA_ASSERT(engine_ != nullptr, "Router: null engine");
    HIMA_ASSERT(static_cast<bool>(policy_), "Router: null admission policy");
    maxActive_ = engine_->config().routerMaxActiveLanes == 0
                     ? engine_->capacity()
                     : engine_->config().routerMaxActiveLanes;
    queueCapacity_ = engine_->config().routerQueueCapacity;

    // Engines construct fully occupied (lockstep back-compat); a
    // router starts from an empty house and admits on demand.
    for (Index slot = 0; slot < engine_->capacity(); ++slot)
        engine_->release(slot);

    bindings_.resize(engine_->capacity());
    drainingSlots_.reserve(engine_->capacity());
    inputs_.resize(engine_->capacity());
    outputs_.resize(engine_->capacity());
}

bool
Router::submit(ServeRequest request)
{
    HIMA_ASSERT(!request.tokens.empty(), "submit: empty episode (id %llu)",
                static_cast<unsigned long long>(request.id));
    for (const Vector &token : request.tokens)
        HIMA_ASSERT(token.size() == config().inputSize,
                    "submit: token width %zu != inputSize %zu (id %llu)",
                    token.size(), config().inputSize,
                    static_cast<unsigned long long>(request.id));
    if (queue_.size() >= queueCapacity_) {
        ++rejected_;
        metrics_.rejected->add();
        return false;
    }
    queue_.push_back(std::move(request));
    arrivalSteps_.push_back(now_);
    return true;
}

void
Router::step()
{
    const std::uint64_t stepStart =
        obs::metricsEnabled() ? obs::traceNowNanos() : 0;

    // 1. Evict lanes that finished on the previous step. Their results
    //    were harvested when they finished; only the slot is reclaimed.
    {
        obs::TraceSpan span("router.evict", drainingSlots_.size());
        for (Index slot : drainingSlots_)
            engine_->release(slot);
        drainingSlots_.clear();
    }

    // 2. Admission: policy decides how many queued requests to bind now.
    {
        obs::TraceSpan span("router.bind", queue_.size());
        const Index headroom =
            maxActive_ - std::min(maxActive_, engine_->activeLanes());
        const Index bindable = std::min(engine_->freeLanes(), headroom);
        if (!queue_.empty() && bindable > 0) {
            const Index oldestWait = now_ - arrivalSteps_.front();
            Index admitCount = policy_(queue_.size(), bindable, oldestWait);
            admitCount =
                std::min({admitCount, Index(queue_.size()), bindable});
            for (Index i = 0; i < admitCount; ++i) {
                const Index slot = engine_->admit();
                Binding &binding = bindings_[slot];
                binding.bound = true;
                binding.request = std::move(queue_.front());
                queue_.pop_front();
                binding.cursor = 0;
                binding.result = ServeResult{};
                binding.result.id = binding.request.id;
                binding.result.arrivalStep = arrivalSteps_.front();
                arrivalSteps_.pop_front();
                binding.result.admitStep = now_;
                // Pre-size the whole result at admission so the per-step
                // harvest is a same-size Vector copy — serving steps stay
                // zero-alloc even while the queue is overflowing.
                binding.result.outputs.assign(
                    binding.request.tokens.size(),
                    Vector(config().outputSize));
                ++inFlight_;
            }
            metrics_.admitted->add(admitCount);
        }
    }

    // 3. One engine step over the active lanes. inputs_ entries for
    //    inactive slots are ignored by the engine; bound slots reuse
    //    their Vector storage (same-size copy assignment: no realloc).
    {
        obs::TraceSpan span("router.engine_step", engine_->activeLanes());
        for (Index slot = 0; slot < bindings_.size(); ++slot) {
            Binding &binding = bindings_[slot];
            if (binding.bound)
                inputs_[slot] = binding.request.tokens[binding.cursor];
        }
        engine_->stepInto(inputs_, outputs_);
    }

    // Harvest this step's outputs; finished lanes start draining and are
    // evicted at the next boundary.
    {
        obs::TraceSpan span("router.harvest");
        Index finished = 0;
        for (Index slot = 0; slot < bindings_.size(); ++slot) {
            Binding &binding = bindings_[slot];
            if (!binding.bound)
                continue;
            binding.result.outputs[binding.cursor] = outputs_[slot];
            ++binding.cursor;
            if (binding.cursor == binding.request.tokens.size()) {
                binding.result.finishStep = now_;
                engine_->markDraining(slot);
                drainingSlots_.push_back(slot);
                completed_.push_back(std::move(binding.result));
                binding = Binding{};
                --inFlight_;
                ++finished;
            }
        }
        if (finished > 0)
            metrics_.completed->add(finished);
    }

    ++now_;
    metrics_.steps->add();
    metrics_.queueDepth->set(static_cast<std::int64_t>(queue_.size()));
    metrics_.activeLanes->set(static_cast<std::int64_t>(inFlight_));
    if (stepStart != 0)
        metrics_.stepNanos->record(obs::traceNowNanos() - stepStart);
}

void
Router::drain()
{
    while (!idle())
        step();
    // Requests that finished on the final step left their lanes in
    // Draining (normally reclaimed at the next boundary); flush them so
    // an idle router reports a fully free engine.
    for (Index slot : drainingSlots_)
        engine_->release(slot);
    drainingSlots_.clear();
}

} // namespace hima
