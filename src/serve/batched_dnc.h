/**
 * @file
 * BatchedDnc: the batched inference serving engine.
 *
 * Serving the paper's workloads (DNC-D tiles behind a query front-end,
 * HiMA-style throughput targets) means stepping many independent DNC
 * instances per process. One Dnc at a time wastes the two things batch
 * execution amortizes:
 *
 *   1. Controller weights. Every lane of a serving deployment runs the
 *      same trained model, so the LSTM and projection-head matrices are
 *      shared — but a sequential loop re-streams every weight row from
 *      cache/DRAM once per lane per step. BatchedDnc keeps controller
 *      activations lane-interleaved (struct-of-arrays: element j of lane
 *      b lives at buf[j * B + b]) and sweeps each weight row across all
 *      B lanes at once, cutting per-lane weight traffic by B.
 *   2. Per-step overhead. Interface decode, kernel dispatch and the
 *      fork/join of the DNC-D-style thread pool are paid once per batch
 *      instead of once per lane.
 *
 * Memory-side state (external memory, usage, linkage, weightings) is
 * per-lane by nature — no operand is shared across lanes — so each lane
 * owns a MemoryUnit tile: the batch-major tile array reuses the
 * allocation-free stepInto() hot path, the row-norm cache and the fused
 * AVX2 linkage sweep unchanged, and lanes are scheduled across the
 * existing ThreadPool (config.numThreads lanes run concurrently).
 *
 * Bit-exactness contract (tested in tests/test_batched_dnc.cpp): lane b
 * of BatchedDnc(config, seed) produces exactly the outputs and state of
 * an independent Dnc(config, seed) fed lane b's input stream — for any
 * batch size, any thread count, fixed-point on or off, and any
 * writeSkipThreshold. The batched controller sweeps keep one c-ascending
 * accumulator per lane (see batchedMatVecInto), so batching never
 * changes per-lane arithmetic, only operand reuse. Reductions are never
 * split across threads — parallelism is over LSTM row blocks and over
 * lanes, both of which own their outputs exclusively — so any thread
 * count is bit-identical too.
 *
 * Steady state performs zero heap allocations (asserted in
 * tests/test_tensor_inplace.cpp): all struct-of-arrays buffers, per-lane
 * scratch and the pool tasks are preallocated at construction.
 */

#ifndef HIMA_SERVE_BATCHED_DNC_H
#define HIMA_SERVE_BATCHED_DNC_H

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "dnc/controller.h"
#include "dnc/memory_unit.h"

namespace hima {

/** B independent DNC lanes stepped together. */
class BatchedDnc
{
  public:
    /**
     * @param config shapes and feature flags; config.batchSize lanes are
     *               created and config.numThreads pool lanes drive them
     * @param seed   weight-initialization seed — the same seed a
     *               reference Dnc would be constructed with
     */
    explicit BatchedDnc(const DncConfig &config, std::uint64_t seed = 1);

    /**
     * One inference step for every lane.
     *
     * @param inputs  batchSize() task tokens, each of width inputSize
     * @param outputs resized to batchSize() vectors of width outputSize
     *                and overwritten; buffers are reused across calls, so
     *                a steady-state step allocates nothing
     */
    void stepInto(const std::vector<Vector> &inputs,
                  std::vector<Vector> &outputs);

    /** Allocating convenience wrapper over stepInto(). */
    std::vector<Vector> step(const std::vector<Vector> &inputs);

    /** Reset every lane's controller and memory state. */
    void reset();

    Index batchSize() const { return batch_; }
    const DncConfig &config() const { return config_; }

    /** Lane b's memory tile (state inspection for tests/monitoring). */
    const MemoryUnit &laneMemory(Index lane) const { return lanes_[lane]; }

    /** Lane b's LSTM hidden state, gathered out of the SoA tile. */
    Vector laneHidden(Index lane) const;

    /** Lane b's LSTM cell state, gathered out of the SoA tile. */
    Vector laneCell(Index lane) const;

    /** Lane b's read vectors from the previous step. */
    const std::vector<Vector> &laneReads(Index lane) const
    {
        return readouts_[lane].readVectors;
    }

  private:
    // The output head uses the public batched kernels directly
    // (batchedMatVecInto / batchedMatVecAccumulate); the LSTM and
    // interface sweeps below are row-range versions of the same chunked
    // per-lane-accumulator scheme — they can't call the whole-matrix
    // kernels because pool tasks own row blocks and the LSTM fuses four
    // gates plus the cell update into one pass. Their per-lane chains
    // are pinned to the reference order by tests/test_batched_dnc.cpp.

    /** Batched LSTM recurrence for rows [row0, row1). */
    void lstmRows(Index row0, Index row1);

    /** Batched interface-head projection for rows [row0, row1). */
    void ifaceRows(Index row0, Index row1);

    /** Decode + memory-unit step + reads scatter for one lane. */
    void laneStep(Index lane);

    /** Batched output head: y = W_y h + W_r [reads], all lanes. */
    void outputSweep();

    /** Run fn over count indices, on the pool when one is configured. */
    void dispatch(Index count, const std::function<void(Index)> &fn);

    DncConfig config_;
    Index batch_;
    Index feedWidth_;  ///< inputSize + R * W
    Index readWidth_;  ///< R * W
    Rng rng_;          ///< weight-init stream, identical to Dnc's
    Controller proto_; ///< shared weights (its own h/c state is unused)
    std::vector<MemoryUnit> lanes_;       ///< batch-major memory tiles
    std::vector<MemoryReadout> readouts_; ///< per-lane readouts, reused
    std::vector<InterfaceVector> ifaces_; ///< per-lane decoded interfaces
    std::vector<Vector> rawLane_;         ///< per-lane decode gather

    // Struct-of-arrays controller activations: element j of lane b lives
    // at buf[j * batch_ + b].
    Vector feed_;      ///< [input; prev reads], feedWidth x B
    Vector hidden_;    ///< LSTM hidden state, H x B
    Vector hiddenPrev_; ///< pre-step hidden snapshot (recurrence input)
    Vector cell_;      ///< LSTM cell state, H x B
    Vector gatePre_[4]; ///< gate pre-activations, H x B each
    Vector rawIface_;  ///< interface emission, interfaceSize x B
    Vector readsFlat_; ///< concatenated read vectors, (R*W) x B
    Vector outSoA_;    ///< model outputs, outputSize x B

    std::unique_ptr<ThreadPool> pool_; ///< present when numThreads > 1
    Index lstmBlocks_;
    Index ifaceBlocks_;
    std::function<void(Index)> lstmTask_;  ///< prebuilt: no per-step alloc
    std::function<void(Index)> ifaceTask_;
    std::function<void(Index)> laneTask_;
};

} // namespace hima

#endif // HIMA_SERVE_BATCHED_DNC_H
