/**
 * @file
 * BatchedDnc: the batched inference serving engine, organized around a
 * lane lifecycle.
 *
 * Serving the paper's workloads (DNC-D tiles behind a query front-end,
 * HiMA-style throughput targets) means stepping many independent DNC
 * instances per process. One Dnc at a time wastes the two things batch
 * execution amortizes:
 *
 *   1. Controller weights. Every lane of a serving deployment runs the
 *      same trained model, so the LSTM and projection-head matrices are
 *      shared — but a sequential loop re-streams every weight row from
 *      cache/DRAM once per lane per step. BatchedDnc keeps controller
 *      activations lane-interleaved (struct-of-arrays: element j of the
 *      lane in column b lives at buf[j * capacity + b]) and sweeps each
 *      weight row across all occupied columns at once, cutting per-lane
 *      weight traffic by the batch occupancy.
 *   2. Per-step overhead. Interface decode, kernel dispatch and the
 *      fork/join of the DNC-D-style thread pool are paid once per batch
 *      instead of once per lane.
 *
 * Memory-side state (external memory, usage, linkage, weightings) is
 * per-lane by nature — no operand is shared across lanes — so each lane
 * owns a MemoryUnit tile: the batch-major tile array reuses the
 * allocation-free stepInto() hot path, the row-norm cache and the fused
 * AVX2 linkage sweep unchanged, and lanes are scheduled across the
 * existing ThreadPool (config.numThreads lanes run concurrently).
 *
 * Lane lifecycle (PR 3). Real query arrival processes churn: requests
 * arrive, run an episode, and leave, so a serving batch is rarely full
 * and never static. Each of the capacity() slots is therefore a
 * LaneSlot that is Free, Active or Draining:
 *
 *     Free ──admit()──▶ Active ──markDraining()──▶ Draining
 *       ▲                  │                          │
 *       └────────────── release() ◀───────────────────┘
 *
 *   - admit() performs an in-place episode reset — the slot's controller
 *     columns are zeroed and its MemoryUnit tile reset, nothing is
 *     reallocated — so the admitted lane is indistinguishable from a
 *     freshly constructed Dnc.
 *   - Active lanes step; Draining lanes keep their state readable (for
 *     result harvesting) but are excluded from sweeps.
 *   - release() returns the slot to the free pool for reuse.
 *
 * Slot ids are stable handles; internally the engine keeps occupied SoA
 * *columns* compacted — Active lanes in the leading columns, Draining
 * lanes immediately after — so every controller sweep runs over a dense
 * active prefix and a partially occupied batch pays no padding flops
 * (see the laneStride/activeLanes forms of the batched kernels in
 * common/tensor.h). Lifecycle transitions move at most one column of
 * persistent state (h, c, previous reads) and are allocation-free.
 *
 * Bit-exactness contract (tests/test_batched_dnc.cpp,
 * tests/test_router.cpp): the lane in slot s produces exactly the
 * outputs and state of an independent Dnc(config, seed) fed slot s's
 * input stream since its admission — for any batch size, any occupancy,
 * any admit/release interleaving of its co-tenants, any thread count,
 * fixed-point on or off, and any writeSkipThreshold. The batched
 * controller sweeps keep one c-ascending accumulator per lane (see
 * batchedMatVecInto), so batching never changes per-lane arithmetic,
 * only operand reuse; column moves copy state bit-for-bit. Reductions
 * are never split across threads — parallelism is over LSTM row blocks
 * and over lanes, both of which own their outputs exclusively — so any
 * thread count is bit-identical too.
 *
 * Steady state performs zero heap allocations even across lane churn
 * (asserted in tests/test_tensor_inplace.cpp): all struct-of-arrays
 * buffers, per-lane scratch, the free-slot stack and the pool tasks are
 * preallocated at construction; admit/release only reuse slots.
 */

#ifndef HIMA_SERVE_BATCHED_DNC_H
#define HIMA_SERVE_BATCHED_DNC_H

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "dnc/controller.h"
#include "dnc/memory_unit.h"
#include "serve/engine.h"

namespace hima {

/**
 * One serving lane slot: lifecycle state plus the SoA column currently
 * backing it. The slot id (its index) is the stable external handle;
 * `column` is engine-internal and moves as the active prefix compacts.
 */
struct LaneSlot
{
    LaneState state = LaneState::Active;
    Index column = 0;
};

/** Up to capacity() independent DNC lanes stepped together. */
class BatchedDnc final : public LaneEngine
{
  public:
    /**
     * @param config shapes and feature flags; config.batchSize slots are
     *               created and config.numThreads pool lanes drive them
     * @param seed   weight-initialization seed — the same seed a
     *               reference Dnc would be constructed with
     *
     * All slots start Active (slot i in column i), so a churn-free
     * caller gets the fixed-B lockstep engine unchanged. A router
     * releases them and admits on demand.
     */
    explicit BatchedDnc(const DncConfig &config, std::uint64_t seed = 1);

    /**
     * One inference step for every *Active* lane.
     *
     * @param inputs  capacity() entries indexed by slot id; only Active
     *                slots are read and each must hold an inputSize-wide
     *                token (inactive entries are ignored, may be empty)
     * @param outputs resized to capacity(); the Active slots' entries
     *                are overwritten with outputSize-wide model outputs,
     *                the rest are left untouched. Buffers are reused
     *                across calls, so a steady-state step allocates
     *                nothing. A step with zero Active lanes is a no-op.
     */
    void stepInto(const std::vector<Vector> &inputs,
                  std::vector<Vector> &outputs) override;

    /** Allocating convenience wrapper over stepInto(). */
    std::vector<Vector> step(const std::vector<Vector> &inputs);

    // --- lane lifecycle -------------------------------------------------

    /**
     * Bind a Free slot and episode-reset it in place (controller state
     * zeroed, MemoryUnit tile re-initialized; no reallocation). The lane
     * then evolves exactly like a freshly constructed Dnc(config, seed).
     * Requires freeLanes() > 0.
     *
     * @return the admitted slot id
     */
    Index admit() override;

    /**
     * Move an Active lane out of the stepping set while keeping its
     * state readable (laneMemory/laneHidden/laneCell/laneReads stay
     * valid) until release().
     */
    void markDraining(Index slot) override;

    /** Return an Active or Draining slot to the free pool. */
    void release(Index slot) override;

    LaneState laneState(Index slot) const override
    {
        return slots_[slot].state;
    }
    Index activeLanes() const override { return active_; }
    Index drainingLanes() const override { return occupied_ - active_; }
    Index freeLanes() const override { return batch_ - occupied_; }

    /** Total slots (== config.batchSize). */
    Index capacity() const override { return batch_; }

    /**
     * Reset every slot to the construction state: all lanes Active in
     * their home columns with zeroed controller and memory state.
     */
    void reset() override;

    Index batchSize() const { return batch_; }
    const DncConfig &config() const override { return config_; }

    /** Slot s's memory tile (state inspection for tests/monitoring). */
    const MemoryUnit &laneMemory(Index slot) const { return lanes_[slot]; }

    /** Slot s's LSTM hidden state, gathered out of the SoA tile. */
    Vector laneHidden(Index slot) const;

    /** Slot s's LSTM cell state, gathered out of the SoA tile. */
    Vector laneCell(Index slot) const;

    /** Slot s's read vectors from the previous step. */
    const std::vector<Vector> &laneReads(Index slot) const
    {
        return readouts_[slot].readVectors;
    }

  private:
    // The output head uses the public batched kernels directly
    // (batchedMatVecInto / batchedMatVecAccumulate); the LSTM and
    // interface sweeps below are row-range versions of the same chunked
    // per-lane-accumulator scheme — they can't call the whole-matrix
    // kernels because pool tasks own row blocks and the LSTM fuses four
    // gates plus the cell update into one pass. Their per-lane chains
    // are pinned to the reference order by tests/test_batched_dnc.cpp.

    /** Batched LSTM recurrence for rows [row0, row1), active columns. */
    void lstmRows(Index row0, Index row1);

    /** Batched interface-head projection for rows [row0, row1). */
    void ifaceRows(Index row0, Index row1);

    /** Decode + memory-unit step + reads scatter for one active column. */
    void columnStep(Index column);

    /** Batched output head: y = W_y h + W_r [reads], active columns. */
    void outputSweep();

    /** Run fn over count indices, on the pool when one is configured. */
    void dispatch(Index count, const std::function<void(Index)> &fn);

    // --- column compaction helpers (persistent state: h, c, reads) ---

    /** Swap two columns' persistent state and their slot bindings. */
    void swapColumns(Index a, Index b);

    /** Copy column `from`'s state+binding onto `to` (`from` goes stale). */
    void moveColumn(Index from, Index to);

    /** Zero a column's persistent state (in-place episode reset). */
    void zeroColumn(Index column);

    DncConfig config_;
    Index batch_;      ///< slot capacity (== config.batchSize)
    Index feedWidth_;  ///< inputSize + R * W
    Index readWidth_;  ///< R * W
    Rng rng_;          ///< weight-init stream, identical to Dnc's
    Controller proto_; ///< shared weights (its own h/c state is unused)
    std::vector<MemoryUnit> lanes_;       ///< per-slot memory tiles
    std::vector<MemoryReadout> readouts_; ///< per-slot readouts, reused
    std::vector<InterfaceVector> ifaces_; ///< per-slot decoded interfaces
    std::vector<Vector> rawLane_;         ///< per-slot decode gather

    // Lane lifecycle: columns [0, active_) are Active, [active_,
    // occupied_) are Draining, the rest are stale. Slot ids are stable;
    // colToSlot_ maps an occupied column back to its slot.
    std::vector<LaneSlot> slots_;
    std::vector<Index> colToSlot_;
    std::vector<Index> freeSlots_; ///< stack of Free slot ids (reserved)
    Index active_ = 0;             ///< Active lane count
    Index occupied_ = 0;           ///< Active + Draining lane count

    // Struct-of-arrays controller activations: element j of the lane in
    // column b lives at buf[j * batch_ + b]. hidden_/cell_/readsFlat_
    // persist across steps (and move with their lane on compaction); the
    // rest are recomputed every step.
    Vector feed_;      ///< [input; prev reads], feedWidth x B
    Vector hidden_;    ///< LSTM hidden state, H x B
    Vector hiddenPrev_; ///< pre-step hidden snapshot (recurrence input)
    Vector cell_;      ///< LSTM cell state, H x B
    Vector gatePre_[4]; ///< gate pre-activations, H x B each
    Vector rawIface_;  ///< interface emission, interfaceSize x B
    Vector readsFlat_; ///< concatenated read vectors, (R*W) x B
    Vector outSoA_;    ///< model outputs, outputSize x B

    std::unique_ptr<ThreadPool> pool_; ///< present when numThreads > 1
    Index lstmBlocks_;
    Index ifaceBlocks_;
    std::function<void(Index)> lstmTask_;  ///< prebuilt: no per-step alloc
    std::function<void(Index)> ifaceTask_;
    std::function<void(Index)> laneTask_;
};

} // namespace hima

#endif // HIMA_SERVE_BATCHED_DNC_H
