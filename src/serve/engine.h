/**
 * @file
 * The serving-engine surface the dynamic-batching Router drives: a pool
 * of lane slots with the Free/Active/Draining lifecycle and one
 * stepInto() per engine step.
 *
 * Two implementations exist: BatchedDnc (single-process SoA batching,
 * PR 2/3) and the sharded backend (src/shard/sharded_dnc.h), where each
 * lane's external memory is distributed over wire-connected tile
 * workers. The Router is written against this interface, so moving a
 * deployment from one process to a sharded fleet is a constructor
 * change, not a router change.
 */

#ifndef HIMA_SERVE_ENGINE_H
#define HIMA_SERVE_ENGINE_H

#include <vector>

#include "dnc/dnc_config.h"

namespace hima {

/** Lifecycle state of one serving lane slot. */
enum class LaneState
{
    Free,     ///< unoccupied; admit() may bind a request here
    Active,   ///< stepping; owns a column in the active SoA prefix
    Draining, ///< episode finished; state readable, excluded from sweeps
};

/** A pool of lifecycle-managed DNC serving lanes. */
class LaneEngine
{
  public:
    virtual ~LaneEngine() = default;

    /**
     * One inference step for every *Active* lane. `inputs` holds
     * capacity() entries indexed by slot id (only Active slots are
     * read); `outputs` is resized to capacity() and Active slots'
     * entries overwritten.
     */
    virtual void stepInto(const std::vector<Vector> &inputs,
                          std::vector<Vector> &outputs) = 0;

    /**
     * Bind a Free slot and episode-reset it in place. Requires
     * freeLanes() > 0.
     *
     * @return the admitted slot id
     */
    virtual Index admit() = 0;

    /** Move an Active lane out of the stepping set, state readable. */
    virtual void markDraining(Index slot) = 0;

    /** Return an Active or Draining slot to the free pool. */
    virtual void release(Index slot) = 0;

    virtual LaneState laneState(Index slot) const = 0;
    virtual Index activeLanes() const = 0;
    virtual Index drainingLanes() const = 0;
    virtual Index freeLanes() const = 0;

    /** Total slots. */
    virtual Index capacity() const = 0;

    /** Reset every slot to the construction state (all lanes Active). */
    virtual void reset() = 0;

    virtual const DncConfig &config() const = 0;
};

} // namespace hima

#endif // HIMA_SERVE_ENGINE_H
