/**
 * @file
 * Dynamic-batching request router over the lane-lifecycle BatchedDnc.
 *
 * The PR-2 engine stepped a fixed-B lockstep batch where every lane
 * lived forever; real serving sees a query *arrival process*: requests
 * land at arbitrary times, run an episode of some length, and leave.
 * The router turns the engine into that front-end:
 *
 *   submit() ──▶ bounded FIFO queue ──admission──▶ engine lane slots
 *                                                     │ step, step, …
 *   completed() ◀── harvest ◀── Draining ◀── episode end
 *
 * Each step() is one engine step plus the step-boundary bookkeeping,
 * in a fixed order (evict, admit, step):
 *
 *   1. Evict: lanes marked Draining on the previous step are released —
 *      their results were already harvested, the slots return to the
 *      free pool.
 *   2. Admit: the admission policy inspects the queue and the free
 *      capacity and decides how many queued requests to bind; each bound
 *      request gets an episode-reset lane slot (BatchedDnc::admit()).
 *   3. Step: every active lane advances one token through the engine;
 *      each request's model output is appended to its result. A lane
 *      whose episode just finished is marked Draining.
 *
 * Bit-exactness contract (tests/test_router.cpp): the outputs collected
 * for a request are bit-identical to a dedicated sequential
 * Dnc(config, seed) fed that request's tokens — regardless of when the
 * request arrived, which slot it landed in, what its co-tenants did
 * (admissions and evictions included), the thread count, fixed-point
 * mode, or writeSkipThreshold. This follows from the engine's per-lane
 * contract plus admit()'s in-place episode reset, and is what makes the
 * router's dynamic batching safe to deploy: batching is purely a
 * throughput decision, never an accuracy one.
 *
 * Admission policy is pluggable (a plain function): greedyAdmission()
 * binds as many queued requests as there are free lanes — the lowest-
 * latency choice; batchFillAdmission(minFill, maxWaitSteps) holds
 * admissions back until a fill target is reached (or the oldest request
 * has waited long enough), trading queueing latency for denser batches
 * — the knob bench_router sweeps.
 *
 * Queueing (routerQueueCapacity) and concurrency (routerMaxActiveLanes)
 * bounds come from DncConfig and are validated there.
 */

#ifndef HIMA_SERVE_ROUTER_H
#define HIMA_SERVE_ROUTER_H

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "obs/obs.h"
#include "serve/batched_dnc.h"

namespace hima {

/** One inference request: a whole episode's token stream. */
struct ServeRequest
{
    std::uint64_t id = 0;
    std::vector<Vector> tokens; ///< inputSize-wide, one per episode step
};

/** A finished request with its outputs and latency bookkeeping. */
struct ServeResult
{
    std::uint64_t id = 0;
    std::vector<Vector> outputs; ///< one outputSize-wide vector per token
    Index arrivalStep = 0; ///< router step count when submit() accepted it
    Index admitStep = 0;   ///< step on which its first token ran
    Index finishStep = 0;  ///< step on which its last token ran

    /** Steps spent in the system (queueing + service), inclusive. */
    Index
    latencySteps() const
    {
        return finishStep - arrivalStep + 1;
    }

    /** Steps spent queued before a lane was bound. */
    Index
    queueSteps() const
    {
        return admitStep - arrivalStep;
    }
};

/**
 * Admission policy: called once per step boundary with the queue depth,
 * the number of lanes that may be bound right now, and how many steps
 * the oldest queued request has waited; returns how many requests to
 * admit (clamped to min(queued, freeLanes)).
 */
using AdmissionPolicy =
    std::function<Index(Index queued, Index freeLanes, Index oldestWait)>;

/** Bind as many queued requests as capacity allows (lowest latency). */
AdmissionPolicy greedyAdmission();

/**
 * Hold admissions until `minFill` requests can be bound at once or the
 * oldest queued request has waited `maxWaitSteps` steps, then bind
 * greedily. Denser batches amortize weight streaming better at the cost
 * of queueing latency — the latency/throughput trade bench_router
 * measures.
 */
AdmissionPolicy batchFillAdmission(Index minFill, Index maxWaitSteps);

/** The dynamic-batching front-end. */
class Router
{
  public:
    /**
     * @param config shapes, feature flags, and the router knobs
     *               (batchSize = slot capacity, routerQueueCapacity,
     *               routerMaxActiveLanes)
     * @param seed   engine weight seed (the reference Dnc's seed)
     * @param policy admission policy; defaults to greedyAdmission()
     */
    explicit Router(const DncConfig &config, std::uint64_t seed = 1,
                    AdmissionPolicy policy = greedyAdmission());

    /**
     * Route onto a caller-built engine (e.g. the sharded backend in
     * src/shard/sharded_dnc.h). The engine's DncConfig supplies the
     * router knobs; its lanes are released to an empty house first.
     */
    explicit Router(std::unique_ptr<LaneEngine> engine,
                    AdmissionPolicy policy = greedyAdmission());

    /**
     * Enqueue a request (tokens must be non-empty, inputSize-wide).
     * Stamps the request's arrival at the current step count.
     *
     * @return false when the queue is at routerQueueCapacity (the
     *         request is rejected — back-pressure, caller may retry)
     */
    bool submit(ServeRequest request);

    /** One step boundary (evict, admit) plus one engine step. */
    void step();

    /** Step until every queued and in-flight request has completed. */
    void drain();

    /** True when no request is queued or in flight. */
    bool idle() const { return queue_.empty() && inFlight_ == 0; }

    Index queuedRequests() const { return queue_.size(); }
    Index activeRequests() const { return inFlight_; }

    /** Requests rejected by a full queue since construction. */
    Index rejectedRequests() const { return rejected_; }

    /** Engine steps taken so far (the router's clock). */
    Index now() const { return now_; }

    /**
     * Completed requests, in completion order. The caller may move
     * results out; the router only appends.
     */
    std::vector<ServeResult> &completed() { return completed_; }
    const std::vector<ServeResult> &completed() const { return completed_; }

    LaneEngine &engine() { return *engine_; }
    const LaneEngine &engine() const { return *engine_; }
    const DncConfig &config() const { return engine_->config(); }

  private:
    /** Per-slot binding of an admitted request. */
    struct Binding
    {
        bool bound = false;
        ServeRequest request;
        Index cursor = 0; ///< next token index
        ServeResult result;
    };

    std::unique_ptr<LaneEngine> engine_;
    AdmissionPolicy policy_;
    Index maxActive_ = 0; ///< min(routerMaxActiveLanes or capacity, capacity)
    Index queueCapacity_ = 0;

    std::deque<ServeRequest> queue_;
    std::deque<Index> arrivalSteps_; ///< parallel to queue_
    std::vector<Binding> bindings_;  ///< per slot
    std::vector<Index> drainingSlots_; ///< marked last step, evict next
    std::vector<Vector> inputs_;     ///< slot-indexed engine feed, reused
    std::vector<Vector> outputs_;    ///< slot-indexed engine out, reused
    std::vector<ServeResult> completed_;
    Index inFlight_ = 0;
    Index rejected_ = 0;
    Index now_ = 0;

    // Telemetry series, registered once at construction so the step
    // path never touches the registry's name table.
    struct RouterMetrics
    {
        obs::Counter *steps;
        obs::Counter *admitted;
        obs::Counter *completed;
        obs::Counter *rejected;
        obs::Gauge *queueDepth;
        obs::Gauge *activeLanes;
        obs::Histogram *stepNanos;
        RouterMetrics();
    };
    RouterMetrics metrics_;
};

} // namespace hima

#endif // HIMA_SERVE_ROUTER_H
