/**
 * @file
 * Tiny argv helpers shared by the example binaries.
 */

#ifndef HIMA_EXAMPLES_DEMO_UTIL_H
#define HIMA_EXAMPLES_DEMO_UTIL_H

#include <cstdlib>

#include "common/tensor.h"

namespace hima {

/**
 * Parse a strictly positive integer argv value; returns 0 on any bad
 * input — including negatives, which an unchecked strtoull would
 * silently wrap to a huge count.
 */
inline Index
parsePositive(const char *arg)
{
    char *end = nullptr;
    const long long v = std::strtoll(arg, &end, 10);
    if (end == arg || *end != '\0' || v < 1)
        return 0;
    return static_cast<Index>(v);
}

} // namespace hima

#endif // HIMA_EXAMPLES_DEMO_UTIL_H
