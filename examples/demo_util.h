/**
 * @file
 * Shared argv parsing and config boilerplate for the example binaries
 * (serve_demo, router_demo, shard_demo, shard_worker): one copy of the
 * small-serving-config block and the positive-integer/real parsers
 * instead of per-file duplicates.
 */

#ifndef HIMA_EXAMPLES_DEMO_UTIL_H
#define HIMA_EXAMPLES_DEMO_UTIL_H

#include <cstdlib>
#include <cstring>

#include "dnc/dnc_config.h"

namespace hima {

/**
 * Parse a strictly positive integer argv value; returns 0 on any bad
 * input — including negatives, which an unchecked strtoull would
 * silently wrap to a huge count.
 */
inline Index
parsePositive(const char *arg)
{
    char *end = nullptr;
    const long long v = std::strtoll(arg, &end, 10);
    if (end == arg || *end != '\0' || v < 1)
        return 0;
    return static_cast<Index>(v);
}

/** argv[index] as a positive integer, `fallback` when absent, 0 on bad. */
inline Index
positiveArg(int argc, char **argv, int index, Index fallback)
{
    return index < argc ? parsePositive(argv[index]) : fallback;
}

/** argv[index] as a strictly positive real, `fallback` when absent. */
inline double
positiveRealArg(int argc, char **argv, int index, double fallback)
{
    if (index >= argc)
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(argv[index], &end);
    if (end == argv[index] || *end != '\0' || v <= 0.0)
        return 0.0;
    return v;
}

/**
 * Extract `NAME N` from anywhere in argv (value in the following
 * slot). When present both slots are spliced out — argc shrinks by 2 —
 * so the demos' positional parsing never sees the flag. Returns N, or
 * `fallback` when the flag is absent, or 0 on a malformed value.
 */
inline Index
extractFlag(int &argc, char **argv, const char *name, Index fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) != 0)
            continue;
        const Index value = parsePositive(argv[i + 1]);
        for (int j = i; j + 2 < argc; ++j)
            argv[j] = argv[j + 2];
        argc -= 2;
        return value;
    }
    return fallback;
}

/**
 * The small serving config every demo runs: laptop-friendly shapes with
 * the full feature surface (allocation, linkage, batched lanes).
 */
inline DncConfig
demoServeConfig()
{
    DncConfig cfg;
    cfg.memoryRows = 128;
    cfg.memoryWidth = 32;
    cfg.readHeads = 2;
    cfg.controllerSize = 64;
    cfg.inputSize = 32;
    cfg.outputSize = 32;
    return cfg;
}

} // namespace hima

#endif // HIMA_EXAMPLES_DEMO_UTIL_H
