/**
 * @file
 * Sharded DNC-D demo: the confidence merge running over a real wire
 * protocol, checked live against the in-process model.
 *
 *   usage: shard_demo [tiles] [workers] [steps]
 *          shard_demo --connect ADDR[,ADDR...] [tiles] [steps]
 *
 * Default mode builds `workers` in-process loopback workers hosting
 * `tiles` tiles. --connect drives external worker processes instead
 * (launch them with shard_worker; ADDR is unix:/path, tcp:host:port or
 * shm:/name — the shm form creates the shared-memory region here and
 * the worker attaches to it).
 *
 * The demo (1) writes distinct records into specific tiles through the
 * learned write gating and shows the merge alphas concentrating on the
 * owning tile at query time, (2) cross-checks `steps` random interface
 * steps bit-for-bit against the in-process DncD, (3) reports merge
 * round-trip throughput and wire bytes per step — with periodic
 * checkpointing armed in loopback mode, so the CheckpointRequest/
 * CheckpointState rows show the fault-tolerance overhead — and
 * (4, loopback mode) kills a worker mid-run and shows the coordinator
 * respawn + restore + replay it back to a bit-identical stream.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "obs/obs.h"
#include "shard/coordinator.h"
#include "shard/worker.h"
#include "workload/retrieval.h"

#include "demo_util.h"

namespace hima {
namespace {

std::unique_ptr<Channel>
connectAddr(const std::string &addr, std::size_t shmSlotBytes)
{
    if (addr.rfind("shm:", 0) == 0)
        // Coordinator side creates the region (it owns the slot
        // sizing); the shard_worker process attaches.
        return ShmChannel::create(addr.substr(4), shmSlotBytes);
    if (addr.rfind("unix:", 0) == 0)
        return SocketChannel::connectUnix(addr.substr(5));
    if (addr.rfind("tcp:", 0) == 0) {
        // tcp:PORT (localhost — the form shard_worker listens with) or
        // tcp:host:port.
        const std::string rest = addr.substr(4);
        const std::size_t colon = rest.rfind(':');
        const std::string host =
            colon == std::string::npos ? "127.0.0.1" : rest.substr(0, colon);
        const char *portStr =
            colon == std::string::npos ? rest.c_str()
                                       : rest.c_str() + colon + 1;
        const Index port = parsePositive(portStr);
        if (port == 0 || port > 65535)
            return nullptr;
        return SocketChannel::connectTcp(host,
                                         static_cast<std::uint16_t>(port));
    }
    return nullptr;
}

} // namespace
} // namespace hima

int
main(int argc, char **argv)
{
    using namespace hima;

    DncConfig cfg = demoServeConfig();
    Index tiles = 4;
    Index workers = 2;
    Index steps = 64;
    std::vector<std::string> addrs;

    // --stats-interval N: scrape the whole fleet's telemetry every N
    // cross-check steps and dump the aggregate at exit.
    const Index statsInterval =
        extractFlag(argc, argv, "--stats-interval", 0);

    int arg = 1;
    if (argc > 1 && std::strcmp(argv[1], "--connect") == 0) {
        if (argc < 3) {
            std::fprintf(stderr,
                         "usage: shard_demo --connect ADDR[,ADDR...] "
                         "[tiles] [steps]\n");
            return 1;
        }
        std::string list = argv[2];
        std::size_t pos = 0;
        while (pos != std::string::npos) {
            const std::size_t comma = list.find(',', pos);
            addrs.push_back(list.substr(
                pos, comma == std::string::npos ? comma : comma - pos));
            pos = comma == std::string::npos ? comma : comma + 1;
        }
        arg = 3;
        tiles = positiveArg(argc, argv, arg++, 4);
        steps = positiveArg(argc, argv, arg++, 64);
    } else {
        tiles = positiveArg(argc, argv, 1, 4);
        workers = positiveArg(argc, argv, 2, 2);
        steps = positiveArg(argc, argv, 3, 64);
    }
    if (tiles == 0 || workers == 0 || steps == 0 ||
        cfg.memoryRows % tiles != 0) {
        std::fprintf(stderr,
                     "usage: shard_demo [tiles >= 1, divides %zu] "
                     "[workers >= 1] [steps >= 1]\n",
                     cfg.memoryRows);
        return 1;
    }

    // Build the sharded stack: loopback workers in-process, or sockets
    // to external shard_worker processes.
    std::unique_ptr<ShardCoordinator> coordinator;
    std::vector<std::shared_ptr<ShardWorker>> loopWorkers;
    if (addrs.empty()) {
        // Checkpoint every 16 steps: recovery engages once a respawner
        // is installed below, and the per-type traffic report gains the
        // CheckpointRequest/CheckpointState rows.
        cfg.shardCheckpointIntervalSteps = 16;
        LoopbackShard stack = makeLoopbackShard(cfg, tiles, workers);
        coordinator = std::move(stack.coordinator);
        loopWorkers = std::move(stack.workers);
        coordinator->setRespawner([&loopWorkers](Index) {
            auto worker = std::make_shared<ShardWorker>();
            loopWorkers.push_back(worker);
            return std::make_unique<LoopbackChannel>(
                [worker](const std::uint8_t *data, std::size_t size,
                         FrameSink &reply) {
                    worker->handleFrame(data, size, reply);
                });
        });
        std::printf("shard_demo: %zu tiles on %zu loopback workers "
                    "(N=%zu -> %zu rows/tile), checkpoint every %zu "
                    "steps\n",
                    tiles, workers, cfg.memoryRows, cfg.memoryRows / tiles,
                    cfg.shardCheckpointIntervalSteps);
    } else {
        // shm regions must fit every protocol frame (checkpoint
        // snapshots included) for the largest hosted-tile share.
        const Index hosted = (tiles + addrs.size() - 1) / addrs.size();
        const std::size_t slotBytes =
            shmSlotBytesFor(shardConfigFor(cfg, tiles), hosted);
        std::vector<std::unique_ptr<Channel>> channels;
        for (const std::string &addr : addrs) {
            auto chan = connectAddr(addr, slotBytes);
            if (!chan) {
                std::fprintf(stderr, "cannot connect to %s\n",
                             addr.c_str());
                return 1;
            }
            // Bounded recv: a worker that dies fails the step with a
            // diagnosis instead of hanging this demo forever.
            chan->setRecvTimeout(30000);
            channels.push_back(std::move(chan));
        }
        coordinator = std::make_unique<ShardCoordinator>(
            cfg, tiles, MergePolicy::Confidence, std::move(channels));
        std::printf("shard_demo: %zu tiles across %zu connected workers\n",
                    tiles, addrs.size());
    }

    // 1. Learned sharding + confidence merge: store token t's record on
    //    tile t, then query and watch the alphas find the owner.
    TokenCodebook keys(16, cfg.memoryWidth / 2, 1);
    TokenCodebook values(16, cfg.memoryWidth / 2, 2);
    InterfaceScripter scripter(cfg, keys, values);
    for (Index t = 0; t < tiles; ++t) {
        std::vector<InterfaceVector> perTile(
            tiles, scripter.writeInterface(t, t + 8));
        for (Index other = 0; other < tiles; ++other)
            if (other != t)
                perTile[other].writeGate = 0.0;
        coordinator->stepInterfaces(perTile);
    }
    std::printf("\nmerge alphas after querying each stored token:\n");
    for (Index t = 0; t < tiles; ++t) {
        coordinator->stepInterface(scripter.queryInterface(t));
        std::printf("  token %zu:", t);
        for (Real a : coordinator->lastAlphas()[0])
            std::printf(" %.3f", a);
        std::printf("   <- tile %zu owns it\n", t);
    }

    // 2. Live bit-exactness cross-check against the in-process model.
    coordinator->reset();
    DncD ref(cfg, tiles);
    Rng rng(2026);
    Index mismatches = 0;
    std::vector<obs::Snapshot> perWorker;
    obs::Snapshot fleet;
    for (Index s = 0; s < steps; ++s) {
        InterfaceVector iface;
        {
            // Mixed read/write traffic, same generator as the tests.
            Rng stepRng(1000 + s);
            iface = scripter.writeInterface(stepRng.uniformInt(16),
                                            stepRng.uniformInt(16));
            if (s % 2 == 1)
                iface = scripter.queryInterface(stepRng.uniformInt(16));
        }
        const MemoryReadout a = ref.stepInterface(iface);
        const MemoryReadout b = coordinator->stepInterface(iface);
        for (Index h = 0; h < cfg.readHeads; ++h)
            if (!(a.readVectors[h] == b.readVectors[h]))
                ++mismatches;
        if (statsInterval != 0 && (s + 1) % statsInterval == 0) {
            coordinator->scrapeWorkers(perWorker, fleet);
            const obs::SnapshotEntry *served =
                fleet.find("worker.steps_served");
            std::printf("  [stats @ step %zu] fleet series: %zu, worker "
                        "steps served: %llu\n",
                        s + 1, fleet.entries.size(),
                        static_cast<unsigned long long>(
                            served ? served->counter : 0));
        }
    }
    std::printf("\ncross-check vs in-process DncD: %zu steps, %zu "
                "mismatching read vectors %s\n",
                steps, mismatches,
                mismatches == 0 ? "(bit-identical)" : "(BUG!)");

    // 3. Merge round-trip throughput + per-message-type wire cost.
    const InterfaceVector query = scripter.queryInterface(3);
    std::vector<WireTrafficStats> sentBase, recvBase;
    for (Index k = 0; k < coordinator->channelCount(); ++k) {
        sentBase.push_back(coordinator->channel(k).sentStats());
        recvBase.push_back(coordinator->channel(k).receivedStats());
    }
    const auto start = std::chrono::steady_clock::now();
    for (Index s = 0; s < steps; ++s)
        coordinator->stepInterface(query);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::printf("\n%zu merge round trips in %.3f s = %.1f steps/s\n",
                steps, seconds, static_cast<double>(steps) / seconds);
    std::printf("wire traffic per step, by message type:\n");
    WireTrafficStats sentDiff, recvDiff;
    for (Index k = 0; k < coordinator->channelCount(); ++k) {
        const Channel &chan = coordinator->channel(k);
        sentDiff += chan.sentStats().diffFrom(sentBase[k]);
        recvDiff += chan.receivedStats().diffFrom(recvBase[k]);
    }
    std::string table;
    formatWireTrafficTable(sentDiff, recvDiff,
                           static_cast<double>(steps), table);
    std::fputs(table.c_str(), stdout);

    // 4. Kill + recover (loopback mode): a worker dies mid-stream; the
    //    coordinator respawns a replacement, restores the last
    //    checkpoint, replays the logged steps since, and the stream
    //    stays bit-identical to the undisturbed reference.
    if (addrs.empty()) {
        coordinator->reset();
        ref.reset();
        FaultSpec kill;
        kill.killAtStepFrame = 5; // dies mid-interval: restore + replay
        loopWorkers[0]->injectFault(kill);
        Index faultMismatches = 0;
        for (Index s = 0; s < 24; ++s) {
            Rng stepRng(3000 + s);
            const InterfaceVector iface =
                s % 2 == 0
                    ? scripter.writeInterface(stepRng.uniformInt(16),
                                              stepRng.uniformInt(16))
                    : scripter.queryInterface(stepRng.uniformInt(16));
            const MemoryReadout a = ref.stepInterface(iface);
            const MemoryReadout b = coordinator->stepInterface(iface);
            for (Index h = 0; h < cfg.readHeads; ++h)
                if (!(a.readVectors[h] == b.readVectors[h]))
                    ++faultMismatches;
        }
        std::printf("\nfault tolerance: killed worker 0 mid-run -> %zu "
                    "recovery (%zu checkpoint pulls so far), 24 steps "
                    "after the kill %s\n",
                    static_cast<std::size_t>(coordinator->recoveries()),
                    static_cast<std::size_t>(
                        coordinator->checkpointsTaken()),
                    faultMismatches == 0 ? "bit-identical (recovered)"
                                         : "DIVERGED (BUG!)");
        mismatches += faultMismatches;
    }

    // Final fleet scrape: every worker's registry merged with this
    // process's, rendered as the Prometheus text a scraper would pull.
    if (statsInterval != 0) {
        coordinator->scrapeWorkers(perWorker, fleet);
        std::string text;
        obs::renderPrometheus(fleet, text);
        std::printf("\nfleet telemetry (%zu workers + coordinator):\n%s",
                    perWorker.size(), text.c_str());
    }
    return mismatches == 0 ? 0 : 1;
}
