/**
 * @file
 * NoC exploration scenario: drive the cycle-level network simulator
 * directly with the DNC's traffic patterns over every topology, the way
 * Sec. 4.1 motivates the multi-mode HiMA-NoC.
 *
 *     ./example_noc_explorer
 */

#include <iostream>

#include "hima/hima.h"

int
main()
{
    using namespace hima;

    const Index tiles = 16;
    const std::uint64_t flits = 16;

    std::cout << "NoC exploration: makespan (cycles) of DNC traffic "
                 "patterns on " << tiles << " tiles, " << flits
              << " flits per message\n\n";

    const NocKind kinds[] = {NocKind::HTree, NocKind::BinaryTree,
                             NocKind::Mesh, NocKind::Star, NocKind::Ring,
                             NocKind::Hima};

    Table table({"Topology", "Worst hops", "Broadcast", "Gather",
                 "Gather+Bcast", "Ring acc", "All-to-all", "Transpose"});
    for (NocKind kind : kinds) {
        const Topology topo = Topology::build(kind, tiles);
        Network net(topo);
        auto mk = [&](const std::vector<Message> &batch) {
            return fmtCount(net.run(batch, NocMode::Full).makespan);
        };
        table.addRow({nocKindName(kind),
                      std::to_string(topo.worstCaseHops(NocMode::Full)),
                      mk(broadcast(topo, flits, 1)),
                      mk(gather(topo, flits)),
                      mk(gatherBroadcast(topo, flits, flits, 2, 3)),
                      mk(ringAccumulate(topo, flits)),
                      mk(allToAll(topo, flits)),
                      mk(transposePairs(topo, flits))});
    }
    table.print(std::cout);

    std::cout << "\nHiMA-NoC router modes (Fig. 5(c)) on the 5x5 grid:\n";
    const Topology hima = Topology::build(NocKind::Hima, 24);
    Table modes({"Mode", "Use", "Worst-case hops"});
    modes.addRow({"star", "CT broadcast/collect, sorting",
                  std::to_string(hima.worstCaseHops(NocMode::Star))});
    modes.addRow({"ring", "accumulation, vec inner product",
                  std::to_string(hima.worstCaseHops(NocMode::RingMode))});
    modes.addRow({"full", "mat-vec mult, vec outer product",
                  std::to_string(hima.worstCaseHops(NocMode::Full))});
    modes.print(std::cout);
    std::cout << "(diagonal mode carries only NE/SW transpose streams; "
              << "full-mode worst case is 4 hops on 5x5 as in the "
                 "paper)\n";
    return 0;
}
