/**
 * @file
 * QA inference scenario: run the 20-task synthetic QA suite (the bAbI
 * stand-in) on a monolithic DNC and on DNC-D at several tile counts,
 * reporting per-task accuracy — a miniature of the Fig. 10 study that a
 * downstream user would adapt to their own episodes.
 *
 *     ./example_qa_inference
 */

#include <iostream>

#include "hima/hima.h"

int
main()
{
    using namespace hima;

    DncConfig config;
    config.memoryRows = 256;
    config.memoryWidth = 32;
    config.readHeads = 2;

    const Index vocab = 512;
    TokenCodebook keys(vocab, config.memoryWidth / 2, 101);
    TokenCodebook values(vocab, config.memoryWidth / 2, 202);
    InterfaceScripter scripter(config, keys, values);

    Dnc dnc(config, 1);
    DncD dncd4(config, 4);
    DncD dncd16(config, 16);

    Table table({"Task", "Name", "DNC acc", "DNC-D Nt=4", "DNC-D Nt=16"});
    Rng rng(77);
    Real sums[3] = {};
    const auto suite = taskSuite();
    for (const TaskSpec &spec : suite) {
        const Episode ep = makeEpisode(spec, vocab, rng);
        const Real accDnc = 1.0 -
            runEpisode(dnc, scripter, ep).errorRate();
        const Real acc4 = 1.0 -
            runEpisodeDistributed(dncd4, scripter, ep).errorRate();
        const Real acc16 = 1.0 -
            runEpisodeDistributed(dncd16, scripter, ep).errorRate();
        sums[0] += accDnc;
        sums[1] += acc4;
        sums[2] += acc16;
        table.addRow({std::to_string(spec.id), spec.name,
                      fmtPercent(accDnc), fmtPercent(acc4),
                      fmtPercent(acc16)});
    }
    table.addRule();
    const Real n = static_cast<Real>(suite.size());
    table.addRow({"avg", "", fmtPercent(sums[0] / n),
                  fmtPercent(sums[1] / n), fmtPercent(sums[2] / n)});
    table.print(std::cout);

    std::cout << "\nDNC-D trades a little accuracy for fully local "
                 "memory access (Sec. 5.1); the gap widens with tile "
                 "count, as in Fig. 10.\n";
    return 0;
}
