/**
 * @file
 * Accelerator-simulation scenario: configure HiMA prototypes, simulate a
 * DNC timestep on each and print the latency / area / power report — the
 * workflow an architect would use to size a deployment.
 *
 *     ./example_accelerator_sim
 */

#include <iostream>

#include "hima/hima.h"

int
main()
{
    using namespace hima;

    std::cout << "HiMA accelerator sizing sweep (N x W = 1024 x 64, "
                 "R = 4)\n\n";

    Table table({"Prototype", "Nt", "NoC", "Cycles/step", "us/test",
                 "Area (mm^2)", "Power (W)"});

    for (Index nt : {4, 16, 64}) {
        for (bool distributed : {false, true}) {
            ArchConfig cfg =
                distributed ? himaDncDConfig(nt) : himaDncConfig(nt);
            HimaEngine engine(cfg);
            const StepTiming step = engine.simulateStep();
            HimaEngine engine2(cfg);
            table.addRow({distributed ? "HiMA-DNC-D" : "HiMA-DNC",
                          std::to_string(nt), nocKindName(cfg.noc),
                          fmtCount(step.totalCycles),
                          fmtReal(engine2.testLatencyUs(), 2),
                          fmtReal(engine.area().totalMm2, 1),
                          fmtReal(engine.power().totalW, 2)});
        }
    }
    table.print(std::cout);

    // Drill into one configuration's kernel timeline.
    std::cout << "\nKernel timeline, HiMA-DNC at Nt = 16:\n";
    HimaEngine engine(himaDncConfig(16));
    const StepTiming step = engine.simulateStep();
    Table timeline({"Kernel", "Compute cyc", "NoC cyc", "Energy (uJ)"});
    for (const StageTiming &stage : step.stages) {
        timeline.addRow({kernelName(stage.kernel),
                         fmtCount(stage.computeCycles),
                         fmtCount(stage.nocCycles),
                         fmtReal(stage.energyJ * 1e6, 3)});
    }
    timeline.print(std::cout);
    std::cout << "Step total: " << fmtCount(step.totalCycles)
              << " cycles\n";
    return 0;
}
