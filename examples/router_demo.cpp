/**
 * @file
 * Serving-front-end demo: a Poisson query stream served by the
 * dynamic-batching router.
 *
 * Requests arrive on an open-loop Poisson process (episodes drawn from
 * the 20-task suite), get bound to lane slots of one BatchedDnc as
 * capacity frees up, and leave when their episode completes. The demo
 * prints a short timeline of queue depth and lane occupancy, then the
 * latency distribution — first under greedy admission, then with a
 * batch-fill policy, to show the latency/density trade the admission
 * knob controls.
 *
 *   usage: router_demo [lanes] [threads] [rate] [horizon]
 *     lanes    engine slot capacity       (default 8)
 *     threads  pool threads               (default 2)
 *     rate     mean arrivals per step     (default 0.20)
 *     horizon  arrival window in steps    (default 400)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/stats.h"
#include "obs/obs.h"
#include "serve/router.h"
#include "workload/arrival.h"

#include "demo_util.h"

int
main(int argc, char **argv)
{
    using namespace hima;

    // --stats-interval N: print the router's telemetry registry every N
    // steps and dump the Prometheus text at exit.
    const Index statsInterval =
        extractFlag(argc, argv, "--stats-interval", 0);

    DncConfig cfg = demoServeConfig();
    cfg.batchSize = positiveArg(argc, argv, 1, 8);
    cfg.numThreads = positiveArg(argc, argv, 2, 2);

    ArrivalSpec spec;
    spec.rate = positiveRealArg(argc, argv, 3, 0.20);
    const Index horizon = positiveArg(argc, argv, 4, 400);
    if (cfg.batchSize == 0 || cfg.numThreads == 0 || spec.rate <= 0.0 ||
        horizon == 0) {
        std::fprintf(stderr,
                     "usage: router_demo [lanes >= 1] [threads >= 1] "
                     "[rate > 0] [horizon >= 1]\n");
        return 1;
    }
    const Index printEvery = std::max<Index>(1, horizon / 8);

    std::printf("router_demo: %zu lanes, %zu threads, %.2f arrivals/step, "
                "horizon %zu\n\n",
                cfg.batchSize, cfg.numThreads, spec.rate, horizon);

    struct PolicyRun
    {
        const char *name;
        AdmissionPolicy policy;
    };
    PolicyRun runs[] = {
        {"greedy", greedyAdmission()},
        {"batch-fill(4, wait<=8)", batchFillAdmission(4, 8)},
    };

    for (const PolicyRun &run : runs) {
        Rng traceRng(2026);
        const auto trace = makeArrivalTrace(spec, horizon, traceRng);

        Router router(cfg, 1, run.policy);
        std::size_t next = 0;
        std::printf("--- %s admission ---\n", run.name);
        while (next < trace.size() || !router.idle()) {
            while (next < trace.size() &&
                   trace[next].step <= router.now()) {
                ServeRequest request;
                request.id = trace[next].ordinal;
                request.tokens =
                    requestTokens(trace[next], cfg.inputSize, 7);
                router.submit(std::move(request));
                ++next;
            }
            router.step();
            if (router.now() % printEvery == 0)
                std::printf("  step %4zu: %2zu active, %2zu queued, "
                            "%4zu done\n",
                            router.now(), router.activeRequests(),
                            router.queuedRequests(),
                            router.completed().size());
            if (statsInterval != 0 && router.now() % statsInterval == 0) {
                obs::Snapshot snap;
                obs::processSnapshot(snap);
                const obs::SnapshotEntry *steps =
                    snap.find("router.steps");
                const obs::SnapshotEntry *nanos =
                    snap.find("router.step_nanos");
                std::printf("  [stats] router.steps=%llu  step p95=%llu "
                            "ns  series=%zu\n",
                            static_cast<unsigned long long>(
                                steps ? steps->counter : 0),
                            static_cast<unsigned long long>(
                                nanos ? nanos->hist.percentile(0.95) : 0),
                            snap.entries.size());
            }
        }

        std::vector<double> latency, queueing;
        for (const ServeResult &result : router.completed()) {
            latency.push_back(static_cast<double>(result.latencySteps()));
            queueing.push_back(static_cast<double>(result.queueSteps()));
        }
        std::printf("  served %zu requests in %zu steps",
                    router.completed().size(), router.now());
        if (router.rejectedRequests())
            std::printf(" (%zu rejected by queue back-pressure)",
                        router.rejectedRequests());
        std::printf("\n");
        const std::vector<Real> lat =
            percentiles(std::move(latency), {0.50, 0.95, 0.99});
        std::printf("  latency steps: p50 %.0f  p95 %.0f  p99 %.0f "
                    "(queue-wait p95: %.0f)\n\n",
                    lat[0], lat[1], lat[2],
                    percentile(std::move(queueing), 0.95));
    }

    if (statsInterval != 0) {
        obs::Snapshot snap;
        obs::processSnapshot(snap);
        std::string text;
        obs::renderPrometheus(snap, text);
        std::printf("telemetry registry (Prometheus text):\n%s",
                    text.c_str());
    }
    return 0;
}
