/**
 * @file
 * Serving-layer demo: a batch of independent query streams stepped
 * through one BatchedDnc engine.
 *
 * Each lane models one user session — its own external memory, usage,
 * linkage and LSTM state — while all lanes share the controller weights,
 * which is exactly the shape of a production deployment (one trained
 * model, many concurrent conversations). The demo writes a distinct
 * token sequence into every lane, then shows that (a) lanes evolve
 * independently and (b) the whole batch steps at a per-lane rate a
 * sequential serve loop cannot match.
 *
 *   usage: serve_demo [batch] [threads] [steps] [--stats-interval N]
 *     batch    concurrent sessions (default 8)
 *     threads  pool threads        (default 2)
 *     steps    batch steps to run  (default 200)
 *     --stats-interval N  print telemetry every N steps (default off)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/random.h"
#include "dnc/kernel_profiler.h"
#include "obs/obs.h"
#include "serve/batched_dnc.h"

#include "demo_util.h"

int
main(int argc, char **argv)
{
    using namespace hima;

    // --stats-interval N: print a kernel-telemetry line every N steps
    // and dump the Prometheus text at exit.
    const Index statsInterval =
        extractFlag(argc, argv, "--stats-interval", 0);

    DncConfig cfg = demoServeConfig();
    // 8 concurrent sessions across 2 pool threads by default; argv
    // overrides for quick occupancy/thread sweeps.
    cfg.batchSize = positiveArg(argc, argv, 1, 8);
    cfg.numThreads = positiveArg(argc, argv, 2, 2);
    const int kSteps = static_cast<int>(positiveArg(argc, argv, 3, 200));
    if (cfg.batchSize == 0 || cfg.numThreads == 0 || kSteps <= 0) {
        std::fprintf(stderr,
                     "usage: serve_demo [batch >= 1] [threads >= 1] "
                     "[steps >= 1]\n");
        return 1;
    }

    BatchedDnc engine(cfg);
    std::printf("BatchedDnc: %zu lanes, %zu pool threads, memory %zux%zu\n",
                engine.batchSize(), cfg.numThreads, cfg.memoryRows,
                cfg.memoryWidth);

    // Per-lane query streams: lane b keeps seeing its own token family,
    // so its memory fills with lane-specific content.
    Rng rng(2024);
    std::vector<Vector> laneTokens;
    for (Index b = 0; b < cfg.batchSize; ++b)
        laneTokens.push_back(rng.normalVector(cfg.inputSize));

    std::vector<Vector> inputs(cfg.batchSize);
    std::vector<Vector> outputs;
    const auto start = std::chrono::steady_clock::now();
    for (int step = 0; step < kSteps; ++step) {
        for (Index b = 0; b < cfg.batchSize; ++b) {
            // Jitter each lane's token so streams differ step to step.
            inputs[b] = laneTokens[b];
            inputs[b][static_cast<Index>(step) % cfg.inputSize] +=
                0.1 * static_cast<Real>(b + 1);
        }
        engine.stepInto(inputs, outputs);
        if (statsInterval != 0 &&
            (step + 1) % static_cast<int>(statsInterval) == 0) {
            KernelProfiler total;
            for (Index b = 0; b < cfg.batchSize; ++b)
                total.merge(engine.laneMemory(b).profiler());
            obs::Snapshot snap;
            obs::processSnapshot(snap);
            obs::importKernelProfiler(snap, total);
            const obs::SnapshotEntry *nanos =
                snap.find("kernel.total.nanoseconds");
            std::printf("  [stats] step %d: kernel total %.1f ms, "
                        "series=%zu\n",
                        step + 1,
                        static_cast<double>(nanos ? nanos->counter : 0) *
                            1e-6,
                        snap.entries.size());
        }
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    std::printf("\nper-lane output head after %d steps:\n", kSteps);
    for (Index b = 0; b < cfg.batchSize; ++b)
        std::printf("  lane %zu: y[0]=%+.6f  y[1]=%+.6f  usage=%.3f\n", b,
                    outputs[b][0], outputs[b][1],
                    engine.laneMemory(b).usage().sum());

    std::printf("\n%d batch steps in %.3f s = %.1f lane-steps/sec "
                "(%zu lanes)\n",
                kSteps, seconds,
                static_cast<double>(kSteps) *
                    static_cast<double>(cfg.batchSize) / seconds,
                engine.batchSize());

    if (statsInterval != 0) {
        KernelProfiler total;
        for (Index b = 0; b < cfg.batchSize; ++b)
            total.merge(engine.laneMemory(b).profiler());
        obs::Snapshot snap;
        obs::processSnapshot(snap);
        obs::importKernelProfiler(snap, total);
        std::string text;
        obs::renderPrometheus(snap, text);
        std::printf("\ntelemetry registry (Prometheus text):\n%s",
                    text.c_str());
    }
    return 0;
}
