/**
 * @file
 * Standalone shard worker process: listens on a Unix-domain path or a
 * TCP port, accepts one coordinator connection, and serves DNC-D tiles
 * until the coordinator sends Shutdown (or disconnects).
 *
 *   usage: shard_worker <unix:/path/to.sock | tcp:PORT | shm:/name>
 *
 * Launch one per shard host, then point shard_demo (or any
 * ShardCoordinator) at the addresses:
 *
 *   ./shard_worker unix:/tmp/tile0.sock &
 *   ./shard_worker unix:/tmp/tile1.sock &
 *   ./shard_demo --connect unix:/tmp/tile0.sock,unix:/tmp/tile1.sock
 *
 * shm:/name is the same-host zero-copy transport: the coordinator
 * creates the region (it owns the slot sizing) and this worker attaches
 * to it, waiting up to two minutes for the region to appear — so the
 * worker may be launched first, exactly like the socket modes.
 *
 * The worker is entirely passive: shapes, datapath mode and hosted tile
 * count all arrive in the coordinator's Hello and are validated before
 * the first step.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "shard/worker.h"

#include "demo_util.h"

int
main(int argc, char **argv)
{
    using namespace hima;

    if (argc != 2) {
        std::fprintf(stderr, "usage: shard_worker <unix:/path/to.sock | "
                             "tcp:PORT | shm:/name>\n");
        return 1;
    }
    const std::string addr = argv[1];

    if (addr.rfind("shm:", 0) == 0) {
        std::printf("shard_worker: attaching to shm region %s\n",
                    addr.c_str() + 4);
        auto channel = ShmChannel::attach(addr.substr(4), 120000);
        if (!channel) {
            std::fprintf(stderr, "cannot attach to %s\n", addr.c_str());
            return 1;
        }
        std::printf("shard_worker: coordinator attached, serving tiles\n");
        ShardWorker worker;
        worker.serve(*channel);
        std::printf("shard_worker: shutdown — served %llu steps, %llu "
                    "admitted episodes across %zu hosted tiles (%llu wire "
                    "bytes in, %llu out)\n",
                    static_cast<unsigned long long>(worker.stepsServed()),
                    static_cast<unsigned long long>(
                        worker.episodesServed()),
                    worker.hostedTiles(),
                    static_cast<unsigned long long>(
                        channel->bytesReceived()),
                    static_cast<unsigned long long>(channel->bytesSent()));
        return 0;
    }

    std::unique_ptr<SocketListener> listener;
    if (addr.rfind("unix:", 0) == 0) {
        listener = SocketListener::listenUnix(addr.substr(5));
    } else if (addr.rfind("tcp:", 0) == 0) {
        const Index port = parsePositive(addr.c_str() + 4);
        if (port == 0 || port > 65535) {
            std::fprintf(stderr, "bad tcp port in '%s'\n", addr.c_str());
            return 1;
        }
        listener = SocketListener::listenTcp(
            static_cast<std::uint16_t>(port));
    } else {
        std::fprintf(stderr,
                     "address must start with unix:, tcp: or shm:\n");
        return 1;
    }
    if (!listener) {
        std::fprintf(stderr, "cannot listen on %s\n", addr.c_str());
        return 1;
    }
    std::printf("shard_worker: listening on %s\n", addr.c_str());

    auto channel = listener->accept();
    if (!channel) {
        std::fprintf(stderr, "accept failed\n");
        return 1;
    }
    std::printf("shard_worker: coordinator connected, serving tiles\n");

    ShardWorker worker;
    worker.serve(*channel);

    std::printf("shard_worker: shutdown — served %llu steps, %llu admitted "
                "episodes across %zu hosted tiles (%llu wire bytes in, "
                "%llu out)\n",
                static_cast<unsigned long long>(worker.stepsServed()),
                static_cast<unsigned long long>(worker.episodesServed()),
                worker.hostedTiles(),
                static_cast<unsigned long long>(channel->bytesReceived()),
                static_cast<unsigned long long>(channel->bytesSent()));
    return 0;
}
