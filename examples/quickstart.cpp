/**
 * @file
 * Quickstart: build a DNC, store a short sequence through the public
 * interface-scripting API, and recall it two ways — by content and by
 * walking the temporal linkage (the copy task).
 *
 *     ./example_quickstart
 */

#include <iostream>

#include "hima/hima.h"

int
main()
{
    using namespace hima;

    // 1. Configure a small DNC: 128 slots of 32 words, 2 read heads.
    DncConfig config;
    config.memoryRows = 128;
    config.memoryWidth = 32;
    config.readHeads = 2;
    Dnc dnc(config, /*seed=*/1);

    // 2. Token codebooks: keys and values each occupy half a memory word.
    TokenCodebook keys(64, config.memoryWidth / 2, /*seed=*/11);
    TokenCodebook values(64, config.memoryWidth / 2, /*seed=*/22);
    InterfaceScripter scripter(config, keys, values);

    // 3. Store a sequence, then copy it back through the linkage.
    const std::vector<Index> sequence = {5, 17, 42, 3, 28, 60, 9, 31};
    const CopyResult copy = runCopyTask(dnc, scripter, sequence, 0);
    std::cout << "Copy task: " << copy.correct << "/" << copy.length
              << " tokens recalled in order (error "
              << fmtPercent(copy.errorRate()) << ")\n";

    // 4. Associative recall: query one key directly.
    dnc.reset();
    dnc.stepInterface(scripter.writeInterface(/*key=*/7, /*value=*/33));
    dnc.stepInterface(scripter.writeInterface(/*key=*/8, /*value=*/44));
    const MemoryReadout out =
        dnc.stepInterface(scripter.queryInterface(7));
    std::cout << "Associative recall of key 7 -> value "
              << scripter.decodeValue(out.readVectors[0])
              << " (expected 33)\n";

    // 5. Inspect what the memory unit did (the Table 1 kernels).
    const KernelCounters total = dnc.profiler().grandTotal();
    std::cout << "Kernels executed " << fmtCount(total.totalOps())
              << " primitive ops, touched "
              << fmtCount(total.extMemAccesses)
              << " external-memory words and "
              << fmtCount(total.stateMemAccesses)
              << " state-memory words.\n";
    std::cout << "Usage sort ran "
              << dnc.profiler().at(Kernel::UsageSort).invocations
              << " times; linkage updated "
              << dnc.profiler().at(Kernel::Linkage).invocations
              << " times.\n";
    return 0;
}
